"""Tests for rule orchestration, transformation and scripting."""

import pytest

from repro import SemanticPatch, apply_patch
from repro.engine.scripting import CocciHelpers, ScriptRunner, TaggedValue
from repro.engine.bindings import BoundValue, Env
from repro.smpl.ast import ScriptRule


class TestTransformBasics:
    def test_replacement_preserves_untouched_bytes(self):
        patch = "@r@\nexpression x,y,z;\nsymbol a;\n@@\n- a[x][y][z]\n+ a[x, y, z]\n"
        code = "void f(void) {   s +=   a[i][j][k] * 2.0;  /* keep me */ }\n"
        result = apply_patch(patch, code)
        assert "a[i, j, k]" in result.text
        assert "/* keep me */" in result.text
        assert "  s +=   " in result.text  # original spacing preserved

    def test_whole_function_removal_removes_lines(self):
        patch = ('@c@\ntype T;\nfunction f;\nparameter list PL;\n@@\n'
                 '- __attribute__((target("avx2")))\n- T f(PL) { ... }\n')
        code = ('__attribute__((target("avx2")))\nint fast(int x) { return x; }\n\n'
                'int keep(int x) { return x; }\n')
        result = apply_patch(patch, code)
        assert "fast" not in result.text
        assert "keep" in result.text
        assert "avx2" not in result.text

    def test_insertion_indentation_matches_context(self):
        patch = "@r@ @@\n#pragma omp ...\n{\n+ MARK();\n...\n}\n"
        code = "void f(void) {\n    #pragma omp parallel\n    {\n        work();\n    }\n}\n"
        result = apply_patch(patch, code)
        lines = result.text.splitlines()
        mark = [l for l in lines if "MARK" in l][0]
        assert mark.startswith("        ")

    def test_fresh_identifier_generation_and_collision(self):
        patch = ('@r@\ntype T;\nidentifier f =~ "kern";\nparameter list PL;\n'
                 'statement list SL;\nfresh identifier g = "v_" ## f;\n@@\n'
                 "+ T g (PL) { SL }\nT f (PL) { SL }\n")
        code = "int v_kern(int a) { return a; }\nint kern(int a) { return a + 1; }\n"
        result = apply_patch(patch, code)
        # 'v_kern' already exists, so the fresh name is uniquified
        assert "int v_kern_1 (int a)" in result.text

    def test_no_match_means_no_change(self):
        patch = "@r@ @@\n- nonexistent_call();\n"
        code = "void f(void) { other(); }\n"
        result = apply_patch(patch, code)
        assert not result.changed
        assert result.diff() == ""

    def test_pure_match_rule_produces_no_edits(self):
        patch = "@r@\nidentifier f;\nexpression list el;\n@@\nf(el)\n"
        code = "void g(void) { work(1); }\n"
        result = apply_patch(patch, code)
        assert not result.changed
        assert result.matches_of("r") >= 1


class TestRuleSequencing:
    def test_later_rule_sees_earlier_edits(self):
        patch = ("@one@ @@\n- old_api();\n+ mid_api();\n\n"
                 "@two@ @@\n- mid_api();\n+ new_api();\n")
        code = "void f(void) { old_api(); }\n"
        result = apply_patch(patch, code)
        assert "new_api();" in result.text
        assert result.matches_of("two") == 1

    def test_depends_on_not_satisfied(self):
        patch = ("@first@ @@\n- marker_alpha();\n\n"
                 "@second depends on first@ @@\n- marker_beta();\n")
        code = "void f(void) { marker_beta(); }\n"
        result = apply_patch(patch, code)
        # 'first' never matched, so 'second' must not run
        assert "marker_beta();" in result.text

    def test_depends_on_satisfied(self):
        patch = ("@first@ @@\n- marker_alpha();\n\n"
                 "@second depends on first@ @@\n- marker_beta();\n")
        code = "void f(void) { marker_alpha(); marker_beta(); }\n"
        result = apply_patch(patch, code)
        assert "marker_beta" not in result.text

    def test_metavariable_inheritance_filters_sites(self):
        patch = ('@c@\ntype T;\nfunction f;\nparameter list PL;\n@@\n'
                 '- __attribute__((target("avx512")))\n- T f(PL) { ... }\n\n'
                 "@d@\ntype c.T;\nfunction c.f;\nparameter list c.PL;\n@@\n"
                 '- __attribute__((target("default")))\nT f(PL) { ... }\n')
        code = ('__attribute__((target("default")))\nint work(int x) { return x; }\n'
                '__attribute__((target("avx512")))\nint work(int x) { return x + 1; }\n'
                '__attribute__((target("default")))\nint other(int x) { return x; }\n')
        result = apply_patch(patch, code)
        # 'other' had no avx512 clone: its default attribute must survive
        assert result.text.count('__attribute__((target("default")))') == 1
        assert "avx512" not in result.text

    def test_per_file_isolation(self):
        patch = ("@first@ @@\n- marker_alpha();\n\n"
                 "@second depends on first@ @@\n- marker_beta();\n")
        sp = SemanticPatch.from_string(patch)
        result = sp.apply({"a.c": "void f(void) { marker_alpha(); marker_beta(); }\n",
                           "b.c": "void g(void) { marker_beta(); }\n"})
        assert "marker_beta" not in result["a.c"].text
        assert "marker_beta" in result["b.c"].text


class TestScripting:
    def test_cocci_helpers(self):
        helpers = CocciHelpers()
        assert helpers.make_ident("x").kind == "identifier"
        assert helpers.make_type("t").kind == "type"
        assert helpers.make_pragmainfo("omp").text == "omp"
        helpers.include_match(False)
        assert helpers._include_match is False

    def test_script_rule_extends_environment(self):
        runner = ScriptRunner()
        rule = ScriptRule(name="s", imports=[("fn", "cfe", "fn")], outputs=["nf"],
                          code="coccinelle.nf = cocci.make_ident(fn.upper())")
        env = Env().bind("cfe.fn", BoundValue.for_name("identifier", "curand"))
        outcome = runner.run_script(rule, [env])
        assert outcome.environments[0].get("s.nf").text == "CURAND"

    def test_script_exception_drops_environment(self):
        runner = ScriptRunner()
        rule = ScriptRule(name="s", imports=[("fn", "cfe", "fn")], outputs=["nf"],
                          code="coccinelle.nf = cocci.make_ident(TABLE[fn])")
        runner.globals["TABLE"] = {"known": "renamed"}
        envs = [Env().bind("cfe.fn", BoundValue.for_name("identifier", "known")),
                Env().bind("cfe.fn", BoundValue.for_name("identifier", "unknown"))]
        outcome = runner.run_script(rule, envs)
        assert len(outcome.environments) == 1
        assert outcome.diagnostics  # the dropped environment is reported

    def test_include_match_false_filters(self):
        runner = ScriptRunner()
        rule = ScriptRule(name="s", imports=[("v", "m", "v")], outputs=[],
                          code="cocci.include_match(v == 'keep')")
        envs = [Env().bind("m.v", BoundValue.for_name("identifier", "keep")),
                Env().bind("m.v", BoundValue.for_name("identifier", "drop"))]
        outcome = runner.run_script(rule, envs)
        assert len(outcome.environments) == 1

    def test_initialize_shares_globals_with_scripts(self):
        runner = ScriptRunner()
        init = ScriptRule(name="i", when="initialize", code="LOOKUP = {'a': 'b'}")
        assert runner.run_initialize(init) == []
        rule = ScriptRule(name="s", imports=[("x", "m", "x")], outputs=["y"],
                          code="coccinelle.y = cocci.make_ident(LOOKUP[x])")
        env = Env().bind("m.x", BoundValue.for_name("identifier", "a"))
        outcome = runner.run_script(rule, [env])
        assert outcome.environments[0].get("s.y").text == "b"

    def test_disabled_scripting(self):
        runner = ScriptRunner(enabled=False)
        rule = ScriptRule(name="s", imports=[], outputs=[], code="x = 1")
        outcome = runner.run_script(rule, [Env()])
        assert not outcome.environments and outcome.diagnostics

    def test_end_to_end_dictionary_rename(self):
        patch = """\
@initialize:python@ @@
C2HF = { "curand_uniform_double": "rocrand_uniform_double" }

@cfe@
identifier fn;
expression list el;
position p;
@@
fn@p(el)

@script:python cf2hf@
fn << cfe.fn;
nf;
@@
coccinelle.nf = cocci.make_ident(C2HF[fn])

@hfe@
identifier cfe.fn;
identifier cf2hf.nf;
position cfe.p;
@@
- fn@p
+ nf
(...)
"""
        code = ("double sample(curandState *st) {\n"
                "    double r = curand_uniform_double(st);\n"
                "    return cos(r);\n}\n")
        result = apply_patch(patch, code)
        assert "rocrand_uniform_double(st)" in result.text
        assert "cos(r)" in result.text  # unknown functions untouched
