"""Tests for the mini C interpreter and the equivalence harness."""

import pytest

from repro.errors import InterpreterError
from repro.eval import Interpreter, compare_aos_soa, compare_function, run_function
from repro.options import SpatchOptions


class TestBasics:
    def test_arithmetic_and_return(self):
        code = "double f(double a, double b) { return (a + b) * 2.0 - 1.0; }"
        assert run_function(code, "f", 1.5, 2.5) == pytest.approx(7.0)

    def test_integer_division_truncates(self):
        code = "int f(int a, int b) { return a / b + a % b; }"
        assert run_function(code, "f", 7, 2) == 4

    def test_for_loop_and_compound_assign(self):
        code = "double s(int n) { double acc = 0.0; for (int i = 0; i < n; ++i) acc += i; return acc; }"
        assert run_function(code, "s", 5) == 10

    def test_while_break_continue(self):
        code = """
int f(int n) {
    int count = 0;
    int i = 0;
    while (1) {
        i++;
        if (i > n) break;
        if (i % 2 == 0) continue;
        count += i;
    }
    return count;
}
"""
        assert run_function(code, "f", 6) == 9

    def test_arrays_passed_by_reference(self):
        code = "void scale(double *x, int n, double a) { for (int i=0;i<n;++i) x[i] = a * x[i]; }"
        buf = [1.0, 2.0, 3.0]
        run_function(code, "scale", buf, 3, 2.0)
        assert buf == [2.0, 4.0, 6.0]

    def test_ternary_and_builtins(self):
        code = "double f(double x) { return x > 0.0 ? sqrt(x) : fabs(x); }"
        assert run_function(code, "f", 9.0) == 3.0
        assert run_function(code, "f", -2.5) == 2.5

    def test_function_calls_user_defined(self):
        code = "double sq(double x) { return x * x; }\ndouble f(double x) { return sq(x) + sq(2.0); }"
        assert run_function(code, "f", 3.0) == 13.0

    def test_out_of_bounds_raises(self):
        code = "double f(void) { double a[2]; return a[5]; }"
        with pytest.raises(InterpreterError):
            run_function(code, "f")

    def test_unknown_function_raises(self):
        with pytest.raises(InterpreterError):
            run_function("int f(void) { return 0; }", "missing")

    def test_step_limit(self):
        code = "int f(void) { while (1) { } return 0; }"
        interp = Interpreter(code, max_steps=1000)
        with pytest.raises(InterpreterError):
            interp.call("f")


class TestGlobalsStructsDefines:
    CODE = """
#define NP 4
struct particle { double pos[3]; double mass; };
struct particle P[NP];
double grid[2][3];

double total_mass(int n) {
    double total = 0.0;
    for (int i = 0; i < n; i++) total += P[i].mass;
    return total;
}

void fill(int n) {
    for (int i = 0; i < n; i++) {
        P[i].mass = 1.0 + i;
        P[i].pos[0] = 2.0 * i;
    }
    grid[1][2] = 42.0;
}
"""

    def test_define_constant_used_for_sizing(self):
        interp = Interpreter(self.CODE)
        assert len(interp.get_global("P")) == 4

    def test_struct_fields_and_nested_arrays(self):
        interp = Interpreter(self.CODE)
        interp.call("fill", 4)
        assert interp.call("total_mass", 4) == pytest.approx(1 + 2 + 3 + 4)
        assert interp.get_global("P")[2].fields["pos"][0] == 4.0
        assert interp.get_global("grid")[1][2] == 42.0

    def test_set_global(self):
        interp = Interpreter(self.CODE)
        particles = interp.get_global("P")
        particles[0].fields["mass"] = 10.0
        assert interp.call("total_mass", 1) == 10.0

    def test_printf_and_markers_recorded(self):
        code = """
double f(int n) {
    LIKWID_MARKER_START(__func__);
    printf("n=%d\\n", n);
    LIKWID_MARKER_STOP(__func__);
    return 1.0;
}
"""
        interp = Interpreter(code)
        assert interp.call("f", 3) == 1.0
        assert interp.output == ["n=3\n"]
        assert [c.name for c in interp.marker_calls] == ["LIKWID_MARKER_START",
                                                         "LIKWID_MARKER_STOP"]

    def test_pragmas_ignored(self):
        code = """
double s(int n, const double *x) {
    double acc = 0.0;
    #pragma omp parallel for reduction(+:acc)
    for (int i = 0; i < n; i++) acc += x[i];
    return acc;
}
"""
        assert run_function(code, "s", 3, [1.0, 2.0, 3.0]) == 6.0

    def test_workload_functions_run(self):
        from repro.workloads import gadget

        codebase = gadget.generate(n_files=1, loops_per_file=3, seed=4)
        interp = Interpreter(codebase)
        totals = [f for f in interp.function_names() if f.startswith("total_")]
        updates = [f for f in interp.function_names() if f.startswith("update_")]
        assert totals and updates
        assert interp.call(totals[0], 8) == 0.0  # zero-initialised particles
        interp.call(updates[0], 8, 0.1)          # must simply not raise


class TestEquivalenceHarness:
    def test_equivalent_functions_report_equivalent(self):
        original = {"a.c": "double f(double *x, int n) { double s=0.0; for (int i=0;i<n;++i) s += x[i]; return s; }"}
        transformed = {"a.c": "double f(double *x, int n) { double s=0.0; int i = 0; while (i < n) { s += x[i]; ++i; } return s; }"}
        from repro import CodeBase
        report = compare_function(CodeBase.from_files(original), CodeBase.from_files(transformed),
                                  "f", lambda: ([1.0, 2.0, 3.5], 3), observed_args=(0,))
        assert report.all_equivalent

    def test_behaviour_change_detected(self):
        from repro import CodeBase
        original = CodeBase.from_files({"a.c": "int f(int x) { return x + 1; }"})
        broken = CodeBase.from_files({"a.c": "int f(int x) { return x + 2; }"})
        report = compare_function(original, broken, "f", lambda: (3,))
        assert not report.all_equivalent and report.mismatches

    def test_unroll_removal_preserves_behaviour(self, unrolled_code):
        from repro import CodeBase
        from repro.cookbook import unrolling

        original = CodeBase.from_files({"u.c": unrolled_code})
        transformed = unrolling.reroll_patch_p1_r1().transform(original)

        def args():
            # trip counts that are a multiple of the unroll factor: the
            # contract under which manually unrolled code is generated
            return ([0.0] * 12, [float(i) for i in range(12)], 2.0, 12)

        report = compare_function(original, transformed, "scale4", args, observed_args=(0,))
        assert report.all_equivalent

    def test_unroll_removal_fixes_remainder_handling(self, unrolled_code):
        """For trip counts that are NOT a multiple of the factor, the manually
        unrolled loop skips the tail while the rerolled loop processes it —
        the equivalence harness must detect that observable difference."""
        from repro import CodeBase
        from repro.cookbook import unrolling

        original = CodeBase.from_files({"u.c": unrolled_code})
        transformed = unrolling.reroll_patch_p1_r1().transform(original)
        report = compare_function(original, transformed, "scale4",
                                  lambda: ([0.0] * 10, [1.0] * 10, 2.0, 10),
                                  observed_args=(0,))
        assert not report.all_equivalent

    def test_aos_soa_preserves_reductions(self):
        from repro.cookbook import aos_soa
        from repro.workloads import gadget

        codebase = gadget.generate(n_files=1, loops_per_file=3, seed=8)
        patch = aos_soa.aos_to_soa_patch_from_codebase(codebase, struct_name="particle")
        soa = patch.transform(codebase)
        totals = [f for f in Interpreter(codebase).function_names()
                  if f.startswith("total_")]
        report = compare_aos_soa(codebase, soa, totals, count=16)
        assert report.checked == len(totals) > 0
        assert report.all_equivalent, report.mismatches + report.errors
