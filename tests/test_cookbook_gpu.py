"""Cookbook tests: GPU-oriented use cases (CUDA→HIP, Kokkos, OpenACC)."""

import pytest

from repro import CodeBase
from repro.cookbook import cuda_hip, kokkos_lambda, openacc_openmp
from repro.workloads import cuda_app, kokkos_exercise, openacc_app


class TestCudaToHip:
    def test_function_dictionary_rename(self):
        code = ("double sample(curandState *st) {\n"
                "    double r = curand_uniform_double(st);\n"
                "    return fabs(r);\n}\n")
        result = cuda_hip.function_rename_patch().apply_to_source(code, "s.cu")
        assert "rocrand_uniform_double(st)" in result.text
        assert "fabs(r)" in result.text

    def test_type_dictionary_rename(self):
        code = "void f(void) {\n    __half h;\n    cudaStream_t s;\n    double keep;\n}\n"
        result = cuda_hip.type_rename_patch().apply_to_source(code, "t.cu")
        assert "rocblas_half h;" in result.text
        assert "hipStream_t s;" in result.text
        assert "double keep;" in result.text

    def test_chevron_translation(self):
        code = "void run(int n, cudaStream_t s) { k<<<n/256, 256, 0, s>>>(a, b, n); }\n"
        result = cuda_hip.kernel_launch_patch().apply_to_source(code, "k.cu")
        assert "hipLaunchKernelGGL(k," in result.text
        assert "<<<" not in result.text

    def test_header_translation(self):
        code = "#include <cuda_runtime.h>\n#include <stdio.h>\n"
        result = cuda_hip.header_rename_patch().apply_to_source(code, "h.cu")
        assert "#include <hip/hip_runtime.h>" in result.text
        assert "#include <stdio.h>" in result.text

    def test_full_pipeline_on_workload(self):
        codebase = cuda_app.generate(n_files=1, drivers_per_file=2, adversarial=True, seed=5)
        patch = cuda_hip.cuda_to_hip_patch()
        transformed = patch.transform(codebase)
        text = "\n".join(transformed.files.values())
        assert "<<<" not in text
        assert "cudaMalloc(" not in text
        assert "hipMalloc(" in text
        # strings and comments stay untouched (AST-level matching)
        assert 'printf("cudaMemcpy or kernel launch failed' in text
        assert "cudaMalloc is discussed in this comment" in text

    def test_custom_dictionary(self):
        patch = cuda_hip.function_rename_patch({"myCudaThing": "myHipThing"})
        result = patch.apply_to_source("void f(void) { myCudaThing(1); cudaFree(p); }\n")
        assert "myHipThing(1)" in result.text
        assert "cudaFree(p)" in result.text  # not in the custom map


class TestOpenAcc:
    def test_paper_skeleton_hardcoded_clause(self):
        code = "void f(int n) {\n#pragma acc parallel loop\nfor (int i=0;i<n;++i) a[i]=0;\n}\n"
        result = openacc_openmp.hardcoded_paper_patch().apply_to_source(code)
        assert "#pragma omp kernels copy(a)" in result.text

    def test_real_translator_clauses(self):
        code = ("void f(int n, float *x, float *y) {\n"
                "    #pragma acc parallel loop copy(y[0:n]) copyin(x[0:n])\n"
                "    for (int i = 0; i < n; ++i) y[i] += x[i];\n}\n")
        result = openacc_openmp.acc_to_omp_patch().apply_to_source(code)
        assert "#pragma omp target teams distribute parallel for" in result.text
        assert "map(tofrom: y[0:n])" in result.text
        assert "map(to: x[0:n])" in result.text
        assert "#pragma acc" not in result.text

    def test_continuation_lines_translated(self):
        codebase = openacc_app.generate(n_files=1, loops_per_file=4, adversarial=True, seed=1)
        assert openacc_app.continued_directive_count(codebase) > 0
        transformed = openacc_openmp.acc_to_omp_patch().transform(codebase)
        text = "\n".join(transformed.files.values())
        assert "#pragma acc" not in text

    def test_reduction_clause_preserved(self):
        code = ("double s(int n, const double *v) {\n    double total = 0.0;\n"
                "    #pragma acc parallel loop reduction(+:total)\n"
                "    for (int i = 0; i < n; ++i) total += v[i];\n    return total;\n}\n")
        result = openacc_openmp.acc_to_omp_patch().apply_to_source(code)
        assert "reduction(+:total)" in result.text


class TestKokkos:
    def test_paper_patch_on_exercise(self):
        codebase = kokkos_exercise.generate(n_files=1)
        result = kokkos_lambda.paper_patch().apply(codebase)
        text = result.changed_files[0].text
        assert "#include <Kokkos_Core.hpp>" in text
        assert "parallel_reduce(" in text
        assert "parallel_for(" in text
        assert "KOKKOS_LAMBDA" in text

    def test_generalised_patch_uses_bound_loop_variables(self):
        codebase = kokkos_exercise.generate(n_files=1, n=2048, m=512)
        result = kokkos_lambda.kokkos_patch().apply(codebase)
        text = result.changed_files[0].text
        # the RangePolicy bound comes from the matched loop, not a hard-coded n
        assert "Kokkos::RangePolicy<Kokkos::DefaultHostExecutionSpace>(0, N)" in text
        assert "Kokkos::parallel_reduce(" in text
        assert "result);" in text  # reduction target appended

    def test_untargeted_loops_preserved(self):
        codebase = kokkos_exercise.generate(n_files=1)
        result = kokkos_lambda.kokkos_patch().apply(codebase)
        text = result.changed_files[0].text
        assert "for (int repeat = 0; repeat < nrepeat; repeat++)" in text
