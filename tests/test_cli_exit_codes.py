"""The CLI's exit-status contract, as one parameterized matrix.

``repro-spatch`` promises exactly three exit codes:

* **0** — at least one patch matched (at a non-guard rule),
* **1** — everything parsed and ran, nothing matched,
* **2** — the run never happened: usage errors, unreadable or unparsable
  patch files, missing targets.

The satellite this suite pins down: operational failures must exit **2
with a one-line ``file:line: message`` diagnostic and no traceback** —
never crash out with code 1, never print a Python stack — and the
diagnostic must be byte-identical whether the patch fails to parse
in-process or inside a ``--server`` daemon.
"""

import json

import pytest

from frontend_corpus import CORPUS, PATCH_FILENAMES, PATCH_TEXTS
from repro.cli.spatch import main as spatch_main
from repro.server.daemon import PatchDaemon
from repro.server.service import PatchService

SMPL_MATCH = "@r@ @@\n- old();\n+ new_call();\n"
SMPL_NO_MATCH = "@r@ @@\n- absent_fn();\n+ other();\n"
JSON_MATCH = json.dumps([{"action": "replace", "search": "old();",
                          "replace": "new_call();"}])
JSON_NO_MATCH = json.dumps([{"action": "replace", "search": "absent_fn();",
                             "replace": "other();"}])

TARGET = "void f(void) { old(); }\n"

#: (flag, file name, matching patch, non-matching patch, malformed text)
PATCH_KINDS = [
    ("--sp-file", "p.cocci", SMPL_MATCH, SMPL_NO_MATCH, "@r@\n- broken\n"),
    ("--patch-file", "ops.json", JSON_MATCH, JSON_NO_MATCH,
     "[{\"action\": }]"),
    ("--patch-file", "edit.ap", "changes:\n  - action: delete\n"
     "    snippet: 'old();'\n", "changes:\n  - action: delete\n"
     "    snippet: 'absent_fn();'\n",
     "changes:\n  - action: delete\n    wibble: 'x'\n"),
    ("--patch-file", "edit.blocks",
     "<<<<<<< SEARCH\nold();\n=======\nnew_call();\n>>>>>>> REPLACE\n",
     "<<<<<<< SEARCH\nabsent_fn();\n=======\nx();\n>>>>>>> REPLACE\n",
     "<<<<<<< SEARCH\nold();\n=======\n"),
]

IDS = ["smpl", "jsonops", "ap", "blocks"]


@pytest.fixture
def target(tmp_path):
    path = tmp_path / "a.c"
    path.write_text(TARGET)
    return path


@pytest.fixture
def daemon(tmp_path):
    daemon = PatchDaemon(f"unix:{tmp_path}/spatchd.sock", PatchService())
    daemon.serve_in_thread()
    yield daemon
    daemon.shutdown()


def run(argv, capsys):
    rc = spatch_main(argv)
    captured = capsys.readouterr()
    assert "Traceback" not in captured.err, captured.err
    return rc, captured


class TestExitStatusMatrix:
    @pytest.mark.parametrize("flag, name, match, no_match, bad", PATCH_KINDS,
                             ids=IDS)
    @pytest.mark.parametrize("json_mode", [False, True],
                             ids=["plain", "json"])
    def test_exit_zero_on_match(self, flag, name, match, no_match, bad,
                                json_mode, tmp_path, target, capsys):
        patch = tmp_path / name
        patch.write_text(match)
        argv = [flag, str(patch), str(target)] + (["--json"] if json_mode
                                                  else [])
        rc, captured = run(argv, capsys)
        assert rc == 0
        if json_mode:
            payload = json.loads(captured.out)
            assert payload["exit_status"] == 0 and payload["matched"]

    @pytest.mark.parametrize("flag, name, match, no_match, bad", PATCH_KINDS,
                             ids=IDS)
    @pytest.mark.parametrize("json_mode", [False, True],
                             ids=["plain", "json"])
    def test_exit_one_on_no_match(self, flag, name, match, no_match, bad,
                                  json_mode, tmp_path, target, capsys):
        patch = tmp_path / name
        patch.write_text(no_match)
        argv = [flag, str(patch), str(target)] + (["--json"] if json_mode
                                                  else [])
        rc, captured = run(argv, capsys)
        assert rc == 1
        if json_mode:
            payload = json.loads(captured.out)
            assert payload["exit_status"] == 1 and not payload["matched"]

    @pytest.mark.parametrize("flag, name, match, no_match, bad", PATCH_KINDS,
                             ids=IDS)
    def test_exit_two_on_unparsable_patch(self, flag, name, match, no_match,
                                          bad, tmp_path, target, capsys):
        patch = tmp_path / name
        patch.write_text(bad)
        rc, captured = run([flag, str(patch), str(target)], capsys)
        assert rc == 2
        error_lines = [l for l in captured.err.splitlines()
                       if l.startswith("repro-spatch: error: ")]
        assert len(error_lines) == 1
        # one-line file:line: message diagnostic
        assert error_lines[0].startswith(f"repro-spatch: error: {name}:")

    @pytest.mark.parametrize("flag, name, match, no_match, bad", PATCH_KINDS,
                             ids=IDS)
    def test_exit_two_on_missing_patch_file(self, flag, name, match, no_match,
                                            bad, tmp_path, target, capsys):
        missing = tmp_path / ("missing_" + name)
        rc, captured = run([flag, str(missing), str(target)], capsys)
        assert rc == 2
        assert f"repro-spatch: error: {missing}: " in captured.err

    def test_exit_two_on_missing_target(self, tmp_path, capsys):
        patch = tmp_path / "p.cocci"
        patch.write_text(SMPL_MATCH)
        with pytest.raises(SystemExit) as exc:
            spatch_main(["--sp-file", str(patch),
                         str(tmp_path / "missing.c")])
        assert exc.value.code == 2
        assert "Traceback" not in capsys.readouterr().err

    def test_exit_two_on_no_patch_argument(self, target, capsys):
        with pytest.raises(SystemExit) as exc:
            spatch_main([str(target)])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--sp-file, --patch-file or --cookbook" in err


class TestServerExitParity:
    @pytest.mark.parametrize("flag, name, match, no_match, bad", PATCH_KINDS,
                             ids=IDS)
    def test_match_and_no_match_codes(self, flag, name, match, no_match, bad,
                                      daemon, tmp_path, target, capsys):
        patch = tmp_path / name
        patch.write_text(match)
        rc, _ = run([flag, str(patch), "--server", daemon.address,
                     str(target)], capsys)
        assert rc == 0
        patch.write_text(no_match)
        rc, _ = run([flag, str(patch), "--server", daemon.address,
                     str(target)], capsys)
        assert rc == 1

    @pytest.mark.parametrize("flag, name, match, no_match, bad", PATCH_KINDS,
                             ids=IDS)
    def test_bad_patch_diagnostic_is_byte_identical(self, flag, name, match,
                                                    no_match, bad, daemon,
                                                    tmp_path, target, capsys):
        # the same unparsable patch file, rejected locally and via a
        # daemon round-trip: exit 2 both times, same one-line stderr
        patch = tmp_path / name
        patch.write_text(bad)
        local_rc, local = run([flag, str(patch), str(target)], capsys)
        remote_rc, remote = run([flag, str(patch), "--server",
                                 daemon.address, str(target)], capsys)
        assert local_rc == remote_rc == 2
        assert local.err == remote.err

    def test_missing_patch_file_never_reaches_the_server(self, daemon,
                                                         tmp_path, target,
                                                         capsys):
        missing = tmp_path / "missing.json"
        rc, captured = run(["--patch-file", str(missing), "--server",
                            daemon.address, str(target)], capsys)
        assert rc == 2
        assert f"repro-spatch: error: {missing}: " in captured.err

    def test_unreachable_server_exits_two(self, tmp_path, target, capsys):
        patch = tmp_path / "p.cocci"
        patch.write_text(SMPL_MATCH)
        rc, captured = run(["--sp-file", str(patch), "--server",
                            f"unix:{tmp_path}/nope.sock", str(target)],
                           capsys)
        assert rc == 2
