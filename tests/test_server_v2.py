"""Protocol v2, the apply fleet and restart-surviving workspaces.

The v2 acceptance criteria under test:

* **Pipelining** — a v2 client tags requests with ids, any number may be
  in flight, and the daemon may answer out of order; mutating verbs still
  execute FIFO per (connection, workspace).
* **Compat** — an unmodified v1 client (id-less, strictly serial) works
  against a v2 daemon; a v2 client degrades to v1 against a server that
  rejects ``hello``.
* **Auth** — TCP daemons armed with a shared secret refuse verbs until a
  tokened hello; unix sockets stay auth-free.
* **Fleet** — ``workers=N`` moves applies into worker processes with
  byte-identical results, self-healing resync, and respawn-on-death.
* **Restart** — with a ``state_root``, ``kill -9`` plus restart
  reproduces byte-identical diffs and exit codes *warm* (reuse counters
  over zero), at the service level and through a real daemon subprocess.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import CodeBase, PatchSet, SemanticPatch
from repro.cli.spatch import main as spatch_main
from repro.engine.cache import SharedTreeStore, TreeCache, content_sha1
from repro.server.client import ConnectionLost, RemoteClient, RemoteError
from repro.server.daemon import PatchDaemon
from repro.server.fleet import ApplyFleet, shard_of, state_path
from repro.server.protocol import (PROTOCOL_VERSION, read_message,
                                   result_payload, write_message)
from repro.server.service import PatchService, ServiceError

RENAME_SMPL = "@r@ @@\n- old();\n+ new_call();\n"

FILES = {
    "a.c": "void f(void) { old(); }\n",
    "b.c": "int idle;\n",
}


def canonical(payload: dict) -> str:
    trimmed = {key: value for key, value in payload.items()
               if key not in ("profile", "workspace")}
    return json.dumps(trimmed, sort_keys=True)


def smpl_spec(text=RENAME_SMPL, name="inline"):
    return {"kind": "smpl", "name": name, "text": text}


@pytest.fixture
def daemon(tmp_path):
    daemon = PatchDaemon(f"unix:{tmp_path}/v2.sock", PatchService())
    daemon.serve_in_thread()
    yield daemon
    daemon.shutdown()


# ---------------------------------------------------------------------------
# negotiation, pipelining, ordering
# ---------------------------------------------------------------------------

class TestNegotiation:
    def test_v2_client_negotiates_protocol_2(self, daemon):
        with RemoteClient(daemon.address) as client:
            assert client.protocol == 2
            assert client.ping()["protocol"] == PROTOCOL_VERSION

    def test_protocol_1_client_stays_serial(self, daemon):
        with RemoteClient(daemon.address, protocol=1) as client:
            assert client.protocol == 1
            assert client.open_workspace("w")["created"]
            client.sync_files("w", files=dict(FILES))
            assert client.apply("w", [smpl_spec()])["exit_status"] == 0
            with pytest.raises(ConnectionLost):
                client.submit("ping")

    def test_raw_v1_wire_requests_still_work(self, daemon):
        """The compat contract at the byte level: id-less requests with no
        hello — exactly what an old client sends — are answered id-less
        and in order."""
        sock = socket.socket(socket.AF_UNIX)
        sock.connect(daemon.address[len("unix:"):])
        stream = sock.makefile("rwb")
        try:
            write_message(stream, {"verb": "open_workspace",
                                   "workspace": "w"})
            response = read_message(stream)
            assert response["ok"] and "id" not in response
            write_message(stream, {"verb": "sync_files", "workspace": "w",
                                   "files": dict(FILES)})
            assert read_message(stream)["ok"]
            write_message(stream, {"verb": "apply", "workspace": "w",
                                   "patches": [smpl_spec()]})
            response = read_message(stream)
            assert response["ok"] and "id" not in response
            assert response["result"]["exit_status"] == 0
        finally:
            sock.close()

    def test_hello_result_shape(self, daemon):
        sock = socket.socket(socket.AF_UNIX)
        sock.connect(daemon.address[len("unix:"):])
        stream = sock.makefile("rwb")
        try:
            write_message(stream, {"verb": "hello",
                                   "protocol": PROTOCOL_VERSION})
            result = read_message(stream)["result"]
            assert result["protocol"] == PROTOCOL_VERSION
            assert result["pipelined"] is True
            assert result["auth"] == "open"
        finally:
            sock.close()


class TestPipelining:
    def test_out_of_order_completion(self, daemon):
        """Reads never queue behind applies: a stats submitted *after* an
        apply is answered while the apply is still running."""
        big = {f"f{i}.c": f"void f{i}(void) {{ old(); }}\n"
               for i in range(80)}
        with RemoteClient(daemon.address) as client:
            client.open_workspace("w")
            client.sync_files("w", files=big)
            pending = client.submit_apply("w", [smpl_spec()], profile=True)
            stats = client.submit("stats").wait()  # waited before the apply
            assert stats["workspaces"] == 1
            payload = pending.wait()
            assert payload["exit_status"] == 0
            assert payload["summary"]["changed_files"] == len(big)

    def test_waiting_in_any_order_parks_responses(self, daemon):
        with RemoteClient(daemon.address) as client:
            client.open_workspace("w")
            client.sync_files("w", files=dict(FILES))
            first = client.submit("ping")
            second = client.submit("stats")
            third = client.submit("ping")
            assert third.wait()["protocol"] == PROTOCOL_VERSION
            assert second.wait()["workspaces"] == 1
            assert first.wait()["protocol"] == PROTOCOL_VERSION

    def test_mutating_verbs_keep_fifo_order_per_workspace(self, daemon):
        """sync(A); apply; sync(B); apply — all pipelined at once — must
        see state A then state B: the per-(connection, workspace) chain
        is what makes a pipelined client's script mean what it says."""
        state_a = dict(FILES)
        state_b = {"a.c": "void f(void) { old(); old(); }\n",
                   "b.c": "int idle;\n"}
        patch = SemanticPatch.from_string(RENAME_SMPL, name="inline")
        expect_a = canonical(result_payload(
            PatchSet([patch]).apply(CodeBase.from_files(state_a)), [patch]))
        expect_b = canonical(result_payload(
            PatchSet([patch]).apply(CodeBase.from_files(state_b)), [patch]))

        with RemoteClient(daemon.address) as client:
            client.open_workspace("w")
            replies = []
            for state in (state_a, state_b):
                client.submit("sync_files", workspace="w", files=state)
                replies.append(client.submit_apply("w", [smpl_spec()]))
            got_a, got_b = [reply.wait() for reply in replies]
        assert canonical(got_a) == expect_a
        assert canonical(got_b) == expect_b

    def test_errors_are_per_request_not_per_connection(self, daemon):
        with RemoteClient(daemon.address) as client:
            client.open_workspace("w")
            client.sync_files("w", files=dict(FILES))
            bad = client.submit_apply(
                "w", [{"kind": "cookbook", "name": "no_such"}])
            good = client.submit_apply("w", [smpl_spec()])
            with pytest.raises(RemoteError):
                bad.wait()
            assert good.wait()["exit_status"] == 0


# ---------------------------------------------------------------------------
# auth
# ---------------------------------------------------------------------------

class TestAuth:
    @pytest.fixture
    def tcp_daemon(self):
        daemon = PatchDaemon("127.0.0.1:0", PatchService(),
                             auth_token="sesame")
        daemon.serve_in_thread()
        yield daemon
        daemon.shutdown()

    def test_tokened_client_works(self, tcp_daemon):
        with RemoteClient(tcp_daemon.address, token="sesame") as client:
            assert client.protocol == 2
            client.open_workspace("w")
            client.sync_files("w", files=dict(FILES))
            assert client.apply("w", [smpl_spec()])["exit_status"] == 0

    def test_wrong_token_fails_loudly(self, tcp_daemon):
        with pytest.raises(RemoteError) as err:
            RemoteClient(tcp_daemon.address, token="wrong")
        assert err.value.kind == "auth-failed"

    def test_verb_before_hello_is_refused(self, tcp_daemon):
        with pytest.raises(RemoteError) as err:
            RemoteClient(tcp_daemon.address, protocol=1).ping()
        assert err.value.kind == "auth-required"

    def test_unix_socket_ignores_the_token(self, tmp_path):
        daemon = PatchDaemon(f"unix:{tmp_path}/open.sock", PatchService(),
                             auth_token="sesame")
        daemon.serve_in_thread()
        try:
            with RemoteClient(daemon.address) as client:  # no token
                assert client.ping()["protocol"] == PROTOCOL_VERSION
        finally:
            daemon.shutdown()

    def test_cli_auth_token_flag(self, tcp_daemon, tmp_path, capsys):
        (tmp_path / "code.c").write_text("void f(void) { old(); }\n")
        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_SMPL)
        rc = spatch_main(["--server", tcp_daemon.address,
                          "--auth-token", "sesame",
                          "--sp-file", str(cocci), str(tmp_path / "code.c")])
        assert rc == 0
        assert "new_call" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# shared parse-tree store
# ---------------------------------------------------------------------------

class TestSharedTreeStore:
    def test_identical_content_parses_once_across_caches(self):
        from repro.options import SpatchOptions

        options = SpatchOptions()
        store = SharedTreeStore()
        first = TreeCache(shared=store)
        second = TreeCache(shared=store)
        text = "void f(void) { old(); }\n"
        tree_a = first.get_or_parse(text, "vendor/a.c", options)
        tree_b = second.get_or_parse(text, "other/b.c", options)
        assert first.counters()["misses"] == 1   # the one real parse
        assert second.counters()["misses"] == 0
        assert second.counters()["shared_hits"] == 1
        # the rebind is real: each tree names its own file
        assert tree_a.source.name == "vendor/a.c"
        assert tree_b.source.name == "other/b.c"
        assert store.counters()["rebinds"] == 1

    def test_service_shares_trees_across_workspaces(self):
        """w2 applies a *different* patch to the same contents: the
        transform memo misses (new patch fingerprint), so the files must
        parse — and the shared store answers with w1's trees."""
        other = "@r@ @@\n- old();\n+ other_call();\n"
        service = PatchService()
        try:
            for name, smpl in (("w1", RENAME_SMPL), ("w2", other)):
                service.open_workspace(name)
                service.sync_files(name, files=dict(FILES))
                payload = service.apply(name, [smpl_spec(smpl)])
                assert payload["exit_status"] == 0
            stats = service.stats()
            assert stats["tree_store"]["stores"] >= 1
            assert stats["tree_store"]["hits"] >= 1
        finally:
            service.close()


# ---------------------------------------------------------------------------
# memo-aware delta sync
# ---------------------------------------------------------------------------

class TestMemoAwareSync:
    def test_known_content_never_reuploads(self, daemon):
        codebase = CodeBase.from_files(FILES)
        with RemoteClient(daemon.address) as client:
            client.open_workspace("w1")
            first = client.sync_codebase("w1", codebase)
            assert first["uploaded"] == len(FILES)
            # a second workspace wants the same contents: the blob memo
            # answers the manifest round, nothing travels again
            client.open_workspace("w2")
            second = client.sync_codebase("w2", codebase)
            assert second["uploaded"] == 0
            assert second["recalled"] == len(FILES)
            payload = client.apply("w2", [smpl_spec()])
            assert payload["exit_status"] == 0
            assert payload["files"]["a.c"]["changed"]

    def test_recalled_files_are_byte_identical(self, daemon):
        tricky = {"t.c": "void f(void) { old(); } /* é */\n"}
        with RemoteClient(daemon.address) as client:
            client.open_workspace("w1")
            client.sync_codebase("w1", CodeBase.from_files(tricky))
            client.open_workspace("w2")
            client.sync_codebase("w2", CodeBase.from_files(tricky))
            payload = client.apply("w2", [smpl_spec()], texts=True)
            assert payload["files"]["t.c"]["text"] \
                == "void f(void) { new_call(); } /* é */\n"


# ---------------------------------------------------------------------------
# the apply fleet
# ---------------------------------------------------------------------------

class TestFleetSharding:
    def test_shard_is_stable_and_bounded(self):
        for name in ("w", "proj-1", "ünicode", ""):
            shard = shard_of(name, 8)
            assert 0 <= shard < 8
            assert shard == shard_of(name, 8)  # deterministic across calls

    def test_state_path_distinguishes_colliding_names(self, tmp_path):
        first = state_path(str(tmp_path), "a/b")
        second = state_path(str(tmp_path), "a:b")
        assert first != second
        assert first.endswith(".state")

    def test_fleet_needs_two_workers(self):
        with pytest.raises(ValueError):
            ApplyFleet(1)


@pytest.fixture
def fleet_service(tmp_path):
    service = PatchService(workers=2, state_root=str(tmp_path / "state"))
    yield service
    service.close()


class TestFleetApply:
    def test_byte_identity_with_in_process_apply(self, fleet_service):
        reference_service = PatchService()
        try:
            for service in (reference_service, fleet_service):
                service.open_workspace("w")
                service.sync_files("w", files=dict(FILES))
            reference = reference_service.apply("w", [smpl_spec()])
            fleet = fleet_service.apply("w", [smpl_spec()])
        finally:
            reference_service.close()
        assert canonical(fleet) == canonical(reference)

    def test_warm_reapply_reuses_everything(self, fleet_service):
        fleet_service.open_workspace("w")
        fleet_service.sync_files("w", files=dict(FILES))
        fleet_service.apply("w", [smpl_spec()])
        warm = fleet_service.apply("w", [smpl_spec()], profile=True)
        assert warm["profile"]["incremental"]["files_reused"] == len(FILES)

    def test_query_does_not_go_through_the_fleet(self, fleet_service):
        fleet_service.open_workspace("w")
        fleet_service.sync_files("w", files=dict(FILES))
        payload = fleet_service.query("w", [smpl_spec()])
        assert payload["summary"]["changed_files"] == 1

    def test_stats_reports_the_fleet(self, fleet_service):
        fleet_service.open_workspace("w")
        fleet_service.sync_files("w", files=dict(FILES))
        fleet_service.apply("w", [smpl_spec()])
        stats = fleet_service.stats()
        assert stats["workers"] == 2
        fleet = stats["fleet"]
        assert fleet["workers"] == 2 and fleet["respawns"] == 0
        pinned = fleet["per_worker"][shard_of("w", 2)]
        assert "w" in pinned["workspaces"]

    def test_killed_worker_respawns_and_self_heals(self, fleet_service):
        fleet_service.open_workspace("w")
        fleet_service.sync_files("w", files=dict(FILES))
        reference = canonical(fleet_service.apply("w", [smpl_spec()]))

        handle = fleet_service._fleet._handles[shard_of("w", 2)]
        os.kill(handle.process.pid, signal.SIGKILL)
        handle.process.join(timeout=5.0)

        after = fleet_service.apply("w", [smpl_spec()])
        assert canonical(after) == reference
        assert fleet_service.stats()["fleet"]["respawns"] >= 1

    def test_service_error_from_worker_propagates_kind(self, fleet_service):
        fleet_service.open_workspace("w")
        fleet_service.sync_files("w", files=dict(FILES))
        with pytest.raises(ServiceError) as err:
            fleet_service.apply("w", [{"kind": "cookbook",
                                       "name": "no_such"}])
        assert err.value.kind == "bad-patch"  # same kind the in-process path raises

    def test_two_workspaces_land_on_their_pinned_workers(self, fleet_service):
        # find two names that shard apart so the test exercises both pipes
        names = []
        index = 0
        while len(names) < 2:
            name = f"ws-{index}"
            if not names or shard_of(name, 2) != shard_of(names[0], 2):
                names.append(name)
            index += 1
        for name in names:
            fleet_service.open_workspace(name)
            fleet_service.sync_files(name, files=dict(FILES))
            payload = fleet_service.apply(name, [smpl_spec()])
            assert payload["exit_status"] == 0
        per_worker = fleet_service.stats()["fleet"]["per_worker"]
        assert "ws-0" in per_worker[shard_of("ws-0", 2)]["workspaces"]
        assert names[1] in per_worker[shard_of(names[1], 2)]["workspaces"]


# ---------------------------------------------------------------------------
# restart survival
# ---------------------------------------------------------------------------

class TestRestartSurvival:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_service_restart_is_byte_identical_and_warm(self, tmp_path,
                                                        workers):
        state_root = str(tmp_path / "state")
        service = PatchService(workers=workers, state_root=state_root)
        try:
            service.open_workspace("w")
            service.sync_files("w", files=dict(FILES))
            reference = canonical(service.apply("w", [smpl_spec()]))
        finally:
            service.close()

        # "restart": a brand-new service over the same state root
        reborn = PatchService(workers=workers, state_root=state_root)
        try:
            opened = reborn.open_workspace("w")
            assert opened["restored"] and opened["files"] == len(FILES)
            # the tree is already there: sync is a no-op hash round
            delta = reborn.sync_files("w", hashes={
                name: content_sha1(text) for name, text in FILES.items()})
            assert not delta["need"]
            after = reborn.apply("w", [smpl_spec()], profile=True)
            assert canonical(after) == reference
            assert after["profile"]["restored"]
            assert after["profile"]["incremental"]["files_reused"] \
                == len(FILES)
        finally:
            reborn.close()

    def test_restored_workspace_accepts_edits(self, tmp_path):
        state_root = str(tmp_path / "state")
        service = PatchService(workers=2, state_root=state_root)
        try:
            service.open_workspace("w")
            service.sync_files("w", files=dict(FILES))
            service.apply("w", [smpl_spec()])
        finally:
            service.close()

        reborn = PatchService(workers=2, state_root=state_root)
        try:
            reborn.open_workspace("w")
            reborn.sync_files("w", files={
                "a.c": "void f(void) { old(); old(); }\n"})
            payload = reborn.apply("w", [smpl_spec()])
            assert payload["summary"]["matches"] == 2
        finally:
            reborn.close()


def _spawn_daemon(tmp_path, sock, *extra):
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(root, "src"), env.get("PYTHONPATH", "")]).rstrip(
            os.pathsep)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli.spatchd",
         "--listen", f"unix:{sock}", *extra],
        env=env, stderr=subprocess.PIPE, text=True)
    deadline = time.time() + 30.0
    while not os.path.exists(sock):
        assert process.poll() is None, process.stderr.read()
        assert time.time() < deadline, "daemon never bound its socket"
        time.sleep(0.05)
    return process


class TestKillDashNine:
    """The headline criterion: ``kill -9`` a real daemon, restart it over
    the same ``--state-root``, and get byte-identical results — warm."""

    def test_sigkill_restart_reproduces_results_warm(self, tmp_path):
        sock = str(tmp_path / "kill.sock")
        state_root = str(tmp_path / "state")
        args = ("--workers", "2", "--state-root", state_root)

        process = _spawn_daemon(tmp_path, sock, *args)
        try:
            with RemoteClient(f"unix:{sock}") as client:
                client.open_workspace("w")
                client.sync_files("w", files=dict(FILES))
                reference = client.apply("w", [smpl_spec()])
                assert reference["exit_status"] == 0
            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=15.0)
        finally:
            if process.poll() is None:  # pragma: no cover - failure path
                process.kill()
                process.wait()
        os.unlink(sock)

        process = _spawn_daemon(tmp_path, sock, *args)
        try:
            with RemoteClient(f"unix:{sock}") as client:
                opened = client.open_workspace("w")
                assert opened["restored"]
                after = client.apply("w", [smpl_spec()], profile=True)
                assert canonical(after) == canonical(reference)
                assert after["exit_status"] == reference["exit_status"]
                assert after["profile"]["restored"]
                assert after["profile"]["incremental"]["files_reused"] > 0
                client.shutdown()
            assert process.wait(timeout=15.0) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - failure path
                process.kill()
                process.wait()


# ---------------------------------------------------------------------------
# CLI resilience and flags
# ---------------------------------------------------------------------------

class TestCliRetry:
    def test_retries_once_then_succeeds(self, tmp_path, capsys):
        """The daemon comes up *after* the first connect fails: the retry
        (one exponential-backoff sleep later) lands on the live socket."""
        sock = tmp_path / "late.sock"
        (tmp_path / "code.c").write_text("void f(void) { old(); }\n")
        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_SMPL)

        holder = {}

        def come_up_late():
            time.sleep(0.15)
            daemon = PatchDaemon(f"unix:{sock}", PatchService())
            daemon.serve_in_thread()
            holder["daemon"] = daemon

        thread = threading.Thread(target=come_up_late, daemon=True)
        thread.start()
        try:
            rc = spatch_main(["--server", f"unix:{sock}",
                              "--sp-file", str(cocci),
                              str(tmp_path / "code.c")])
            captured = capsys.readouterr()
            assert rc == 0
            assert "retrying" in captured.err
            assert "new_call" in captured.out
        finally:
            thread.join(timeout=5.0)
            if "daemon" in holder:
                holder["daemon"].shutdown()

    def test_gives_up_after_one_retry(self, tmp_path, capsys):
        (tmp_path / "code.c").write_text("int x;\n")
        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_SMPL)
        rc = spatch_main(["--server", f"unix:{tmp_path}/never.sock",
                          "--sp-file", str(cocci), str(tmp_path / "code.c")])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.count("retrying") == 1


class TestDaemonCliFlags:
    def test_workers_must_be_positive(self, tmp_path):
        from repro.cli.spatchd import main as spatchd_main

        with pytest.raises(SystemExit):
            spatchd_main(["--listen", f"unix:{tmp_path}/x.sock",
                          "--workers", "0"])

    def test_memo_bounds_require_memo_dir(self, tmp_path):
        from repro.cli.spatchd import main as spatchd_main

        with pytest.raises(SystemExit):
            spatchd_main(["--listen", f"unix:{tmp_path}/x.sock",
                          "--memo-max-mb", "64"])

    def test_spatch_memo_prune_requires_memo_dir(self):
        with pytest.raises(SystemExit):
            spatch_main(["--memo-prune"])
        with pytest.raises(SystemExit):
            spatch_main(["--memo-prune", "--memo-dir", "/tmp/x"])


class TestFleetDaemonEndToEnd:
    def test_daemon_with_workers_serves_clients(self, tmp_path):
        daemon = PatchDaemon(
            f"unix:{tmp_path}/fleet.sock",
            PatchService(workers=2, state_root=str(tmp_path / "state")))
        daemon.serve_in_thread()
        try:
            with RemoteClient(daemon.address) as client:
                client.open_workspace("w")
                client.sync_codebase("w", CodeBase.from_files(FILES))
                payload = client.apply("w", [smpl_spec()])
                assert payload["exit_status"] == 0
                assert payload["files"]["a.c"]["changed"]
                warm = client.apply("w", [smpl_spec()], profile=True)
                assert warm["profile"]["incremental"]["files_reused"] \
                    == len(FILES)
                assert client.stats()["fleet"]["workers"] == 2
        finally:
            daemon.shutdown()
