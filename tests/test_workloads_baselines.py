"""Tests for the synthetic workload generators and the textual baselines."""

import pytest

from repro.baselines import AccToOmpTextual, HipifyTextual, SedReroll
from repro.errors import WorkloadError
from repro.lang import ast_nodes as A
from repro.lang.parser import parse_source
from repro.options import SpatchOptions
from repro.workloads import (
    cuda_app, gadget, kokkos_exercise, librsb_like, multiversion_app,
    openacc_app, openmp_kernels, rawloops, unrolled,
)


ALL_GENERATORS = [
    ("gadget", lambda seed: gadget.generate(n_files=1, loops_per_file=2, seed=seed), False),
    ("openmp", lambda seed: openmp_kernels.generate(n_files=1, kernels_per_file=2,
                                                    regions_per_file=1, seed=seed), False),
    ("multiversion", lambda seed: multiversion_app.generate(n_files=1, clone_sets_per_file=2,
                                                            seed=seed), False),
    ("unrolled", lambda seed: unrolled.generate(n_files=1, unrolled_per_file=2, seed=seed), False),
    ("cuda", lambda seed: cuda_app.generate(n_files=1, drivers_per_file=1, seed=seed), True),
    ("openacc", lambda seed: openacc_app.generate(n_files=1, loops_per_file=2, seed=seed), False),
    ("rawloops", lambda seed: rawloops.generate(n_files=1, searches_per_file=2,
                                                counters_per_file=1, seed=seed), True),
    ("kokkos", lambda seed: kokkos_exercise.generate(n_files=1, seed=seed), True),
    ("librsb", lambda seed: librsb_like.generate(n_files=1, combos_per_file=40, seed=seed), False),
]


class TestGenerators:
    @pytest.mark.parametrize("name,factory,needs_cxx", ALL_GENERATORS,
                             ids=[g[0] for g in ALL_GENERATORS])
    def test_deterministic_for_seed(self, name, factory, needs_cxx):
        assert factory(3).files == factory(3).files

    @pytest.mark.parametrize("name,factory,needs_cxx", ALL_GENERATORS,
                             ids=[g[0] for g in ALL_GENERATORS])
    def test_every_file_parses_without_raw_nodes(self, name, factory, needs_cxx):
        options = SpatchOptions(cxx=17) if needs_cxx else SpatchOptions()
        for fname, text in factory(1).items():
            tree = parse_source(text, fname, options=options)
            raw = [n for n in A.walk(tree.unit) if isinstance(n, (A.RawDecl, A.RawStmt))]
            assert raw == [], f"{name}:{fname} has unparsed constructs"

    def test_seed_changes_content(self):
        a = gadget.generate(n_files=1, loops_per_file=3, seed=1)
        b = gadget.generate(n_files=1, loops_per_file=3, seed=2)
        assert a.files != b.files

    def test_invalid_parameters_raise(self):
        with pytest.raises(WorkloadError):
            gadget.generate(n_files=0)
        with pytest.raises(WorkloadError):
            unrolled.generate(factor=1)

    def test_ground_truth_counters(self):
        omp = openmp_kernels.generate(n_files=2, kernels_per_file=3, regions_per_file=2, seed=0)
        assert openmp_kernels.braced_region_count(omp) == 4
        assert openmp_kernels.kernel_function_count(omp) == 6
        un = unrolled.generate(n_files=2, unrolled_per_file=3, impostors_per_file=1, seed=0)
        assert unrolled.unrolled_loop_count(un) == 6
        assert unrolled.impostor_count(un) == 2
        cu = cuda_app.generate(n_files=1, drivers_per_file=3, adversarial=False, seed=0)
        assert cuda_app.kernel_launch_count(cu) == 3
        assert cuda_app.cuda_call_count(cu) > 0
        acc = openacc_app.generate(n_files=1, loops_per_file=4, adversarial=True, seed=0)
        assert openacc_app.acc_directive_count(acc) == 6
        assert openacc_app.continued_directive_count(acc) == 2
        kk = kokkos_exercise.generate(n_files=2)
        assert kokkos_exercise.transformable_loop_count(kk) == 8

    def test_gadget_scales_with_parameters(self):
        small = gadget.generate(n_files=1, loops_per_file=2, seed=0)
        large = gadget.generate(n_files=3, loops_per_file=8, seed=0)
        assert large.loc() > 2 * small.loc()
        assert gadget.aos_access_count(large) > gadget.aos_access_count(small)


class TestHipifyTextual:
    def test_single_line_launch_converted(self):
        code = "void f(void) { k<<<g, b>>>(x, y); cudaFree(p); }\n"
        result = HipifyTextual().run(__import__("repro").CodeBase.from_files({"a.cu": code}))
        out = result.text("a.cu")
        assert "hipLaunchKernelGGL(k, g, b, x, y)" in out
        assert "hipFree(p)" in out

    def test_misses_multiline_launch_and_edits_strings(self):
        codebase = cuda_app.generate(n_files=1, drivers_per_file=2, adversarial=True, seed=0)
        out = HipifyTextual().run(codebase).codebase
        text = "\n".join(out.files.values())
        assert "<<<" in text  # the split launch was not converted
        assert 'printf("hipMemcpy' in text  # string literal rewritten (mis-fire)

    def test_replacement_count_positive(self):
        codebase = cuda_app.generate(n_files=1, drivers_per_file=1, seed=0)
        assert HipifyTextual().run(codebase).replacements > 5


class TestAccTextual:
    def test_simple_directive_translated(self):
        code = "void f(void) {\n#pragma acc parallel loop copyin(x[0:n])\nfor (;;) g();\n}\n"
        out = AccToOmpTextual().run(__import__("repro").CodeBase.from_files({"a.c": code}))
        assert "#pragma omp target teams distribute parallel for map(to: x[0:n])" \
            in out.text("a.c")

    def test_breaks_on_continuation(self):
        codebase = openacc_app.generate(n_files=1, loops_per_file=4, adversarial=True, seed=1)
        out = AccToOmpTextual().run(codebase).codebase
        text = "\n".join(out.files.values())
        # the clause tail on the continuation line was never translated
        assert "copyin(" in text or "copy(" in text


class TestSedReroll:
    def test_rerolls_true_unroll(self, unrolled_code):
        out = SedReroll().run(__import__("repro").CodeBase.from_files({"u.c": unrolled_code}))
        text = out.text("u.c")
        assert "++idx" in text and "idx+1" not in text

    def test_mangles_impostors(self):
        codebase = unrolled.generate(n_files=1, unrolled_per_file=1, impostors_per_file=1,
                                     plain_per_file=0, seed=0)
        out = SedReroll().run(codebase).codebase
        text = "\n".join(out.files.values())
        # statements that were NOT copies have been deleted anyway
        assert "q[i+2]" not in text and "tail_fixup_" in text
