"""Tests for the C/SmPL tokenizer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import Lexer, TokenKind, tokenize, tokenize_pragma_text
from repro.lang.source import SourceFile


def kinds(text, **kw):
    return [t.kind for t in tokenize(text, **kw) if t.kind is not TokenKind.EOF]


def values(text, **kw):
    return [t.value for t in tokenize(text, **kw) if t.kind is not TokenKind.EOF]


class TestBasicTokens:
    def test_identifiers_and_numbers(self):
        assert values("alpha x_1 _tmp 42 3.14 1e-3 0x1F 10UL") == \
            ["alpha", "x_1", "_tmp", "42", "3.14", "1e-3", "0x1F", "10UL"]

    def test_kinds(self):
        assert kinds("a 1 \"s\" 'c' +") == [TokenKind.IDENT, TokenKind.NUMBER,
                                            TokenKind.STRING, TokenKind.CHAR,
                                            TokenKind.PUNCT]

    def test_float_without_leading_digit(self):
        assert values(".5 + x")[0] == ".5"

    def test_string_with_escapes(self):
        assert values(r'"a\"b\n"') == [r'"a\"b\n"']

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("int a; ` b;")


class TestOperators:
    def test_multichar_operators(self):
        assert values("a += b == c && d <<= e -> f :: g ## h") == \
            ["a", "+=", "b", "==", "c", "&&", "d", "<<=", "e", "->", "f", "::",
             "g", "##", "h"]

    def test_chevrons(self):
        toks = values("k<<<grid, block>>>(x)")
        assert "<<<" in toks and ">>>" in toks

    def test_shift_still_works(self):
        assert values("a << b >> c") == ["a", "<<", "b", ">>", "c"]

    def test_ellipsis_is_dots_kind(self):
        toks = tokenize("f(int a, ...)")
        dots = [t for t in toks if t.kind is TokenKind.DOTS]
        assert len(dots) == 1 and dots[0].value == "..."


class TestCommentsAndTrivia:
    def test_line_comment_skipped(self):
        assert values("int a; // comment with * tokens\nint b;") == \
            ["int", "a", ";", "int", "b", ";"]

    def test_block_comment_skipped(self):
        assert values("int /* hi */ a;") == ["int", "a", ";"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("int a; /* oops")

    def test_comment_offsets_recorded(self):
        src = SourceFile(name="x.c", text="int a; /* c */ int b;")
        lexer = Lexer(src)
        lexer.tokenize()
        assert lexer.comments and src.text[slice(*lexer.comments[0])] == "/* c */"


class TestDirectives:
    def test_include_directive_single_token(self):
        toks = tokenize('#include <omp.h>\nint a;')
        assert toks[0].kind is TokenKind.DIRECTIVE
        assert toks[0].value == "#include <omp.h>"

    def test_pragma_with_continuation_merged(self):
        text = "#pragma acc parallel loop \\\n    copyin(x[0:n])\nint a;"
        toks = tokenize(text)
        assert toks[0].kind is TokenKind.DIRECTIVE
        assert "copyin(x[0:n])" in toks[0].value
        assert "\\" not in toks[0].value
        # the raw extent still covers both physical lines
        assert text[toks[0].offset:toks[0].end].count("\n") == 1

    def test_hash_mid_line_not_a_directive(self):
        # '#' not at start of line: stays an ordinary punct (e.g. in macros)
        toks = tokenize("a # b")
        assert [t.value for t in toks[:3]] == ["a", "#", "b"]

    def test_directives_disabled(self):
        toks = tokenize("#pragma omp for", directives_as_tokens=False)
        assert toks[0].value == "#"

    def test_offsets_and_positions(self):
        toks = tokenize("int a;\n  double b;")
        b_tok = [t for t in toks if t.value == "b"][0]
        assert (b_tok.line, b_tok.col) == (2, 9)


class TestSmplMode:
    def test_escaped_disjunction_tokens(self):
        toks = tokenize(r"\( a \| b \& c \)", smpl_mode=True)
        assert [t.kind for t in toks[:1]] == [TokenKind.DISJ_OPEN]
        kinds_present = {t.kind for t in toks}
        assert TokenKind.DISJ_OR in kinds_present
        assert TokenKind.CONJ_AND in kinds_present
        assert TokenKind.DISJ_CLOSE in kinds_present

    def test_escapes_not_recognised_outside_smpl_mode(self):
        with pytest.raises(LexError):
            tokenize(r"\( a \)")

    def test_at_and_regex_operators(self):
        assert values("fn@p =~", smpl_mode=True) == ["fn", "@", "p", "=~"]

    def test_annotation_defaults(self):
        tok = tokenize("x", smpl_mode=True)[0]
        assert tok.annot is None and tok.pline == -1
        annotated = tok.with_annotation("-", 3)
        assert annotated.annot == "-" and annotated.pline == 3


class TestPragmaTextTokenizer:
    def test_words_and_punct(self):
        assert tokenize_pragma_text("omp parallel for reduction(+:acc)") == \
            ["omp", "parallel", "for", "reduction", "(", "+", ":", "acc", ")"]

    def test_empty(self):
        assert tokenize_pragma_text("") == []
