"""Unit tests for the in-process :class:`~repro.server.service.PatchService`.

The service is the daemon minus sockets: everything here runs without a
listener, which keeps the semantics — workspace lifecycle, delta sync,
warm incremental reuse, eviction, error isolation — testable at function
granularity.  The wire layer is covered by ``test_server_daemon.py``.
"""

import json
import threading

import pytest

from repro import CodeBase, PatchSet, SemanticPatch
from repro.cookbook import instrumentation
from repro.engine.cache import content_sha1
from repro.server.protocol import result_payload
from repro.server.service import PatchService, ServiceError

RENAME_SMPL = "@r@ @@\n- old();\n+ new_call();\n"
OTHER_SMPL = "@s@ @@\n- gone();\n+ kept();\n"

FILES = {
    "a.c": "void f(void) { old(); }\n",
    "b.c": "void g(void) { int x; gone(); }\n",
    "c.c": "int untouched;\n",
}


def make_service(**kwargs):
    return PatchService(**kwargs)


def opened(service, name="w", files=FILES):
    service.open_workspace(name)
    service.sync_files(name, files=dict(files))
    return name


def smpl_spec(text, name="inline"):
    return {"kind": "smpl", "name": name, "text": text}


class TestWorkspaceLifecycle:
    def test_open_is_idempotent_and_counts_files(self):
        service = make_service()
        first = service.open_workspace("w")
        assert first["created"] and first["files"] == 0
        service.sync_files("w", files=dict(FILES))
        again = service.open_workspace("w")
        assert not again["created"]
        assert again["files"] == len(FILES)  # warm state survived re-open

    def test_unknown_workspace_is_an_error_not_autocreated(self):
        service = make_service()
        with pytest.raises(ServiceError) as err:
            service.sync_files("nope", files={})
        assert err.value.kind == "unknown-workspace"

    def test_open_from_server_side_root(self, tmp_path):
        (tmp_path / "x.c").write_text("void f(void) { old(); }\n")
        service = make_service()
        info = service.open_workspace("rooted", root=str(tmp_path))
        assert info["files"] == 1
        payload = service.apply("rooted", [smpl_spec(RENAME_SMPL)])
        assert payload["files"]["x.c"]["changed"]

    def test_reopen_with_conflicting_root_errors(self, tmp_path):
        service = make_service()
        service.open_workspace("w", root=str(tmp_path))
        with pytest.raises(ServiceError) as err:
            service.open_workspace("w", root=str(tmp_path / "elsewhere"))
        assert err.value.kind == "bad-request"

    def test_lru_eviction_drops_coldest(self):
        service = make_service(max_workspaces=2)
        for name in ("w1", "w2", "w3"):
            service.open_workspace(name)
        stats = service.stats()
        names = {row["name"] for row in stats["per_workspace"]}
        assert names == {"w2", "w3"}  # w1 was coldest
        assert stats["evictions"] == 1
        with pytest.raises(ServiceError):
            service.workspace("w1")

    def test_touching_a_workspace_saves_it_from_eviction(self):
        service = make_service(max_workspaces=2)
        service.open_workspace("w1")
        service.open_workspace("w2")
        service.sync_files("w1", files={})  # touch w1: w2 is now coldest
        service.open_workspace("w3")
        names = {row["name"] for row in service.stats()["per_workspace"]}
        assert names == {"w1", "w3"}


class TestSyncFiles:
    def test_upsert_and_remove(self):
        service = make_service()
        name = opened(service)
        delta = service.sync_files(name, files={"a.c": FILES["a.c"],
                                                "d.c": "int d;\n"},
                                   remove=["c.c"])
        assert delta["added"] == ["d.c"]
        assert delta["changed"] == []  # identical content is not a change
        assert delta["removed"] == ["c.c"]
        assert delta["files"] == 3

    def test_manifest_reports_need_and_removes_absent(self):
        service = make_service()
        name = opened(service)
        manifest = {"a.c": content_sha1(FILES["a.c"]),        # unchanged
                    "b.c": content_sha1("void g(void) {}\n"),  # edited
                    "new.c": content_sha1("int n;\n")}          # unknown
        delta = service.sync_files(name, hashes=manifest)
        assert sorted(delta["need"]) == ["b.c", "new.c"]
        assert delta["removed"] == ["c.c"]  # absent from the manifest
        # phase two uploads exactly the needed contents
        delta = service.sync_files(name, files={
            "b.c": "void g(void) {}\n", "new.c": "int n;\n"})
        assert delta["changed"] == ["b.c"] and delta["added"] == ["new.c"]
        # a repeated manifest round is now a no-op
        assert service.sync_files(name, hashes=manifest)["need"] == []

    def test_bad_files_payload_rejected_before_mutation(self):
        service = make_service()
        name = opened(service)
        with pytest.raises(ServiceError) as err:
            service.sync_files(name, files={"a.c": 42})
        assert err.value.kind == "bad-request"
        # the bad request left the workspace exactly as it was
        payload = service.apply(name, [smpl_spec(RENAME_SMPL)])
        assert payload["files"]["a.c"]["changed"]


class TestApply:
    def test_matches_local_patchset_byte_for_byte(self):
        service = make_service()
        name = opened(service)
        patch = SemanticPatch.from_string(RENAME_SMPL, name="inline")
        local = PatchSet([patch]).apply(CodeBase.from_files(FILES))
        local_payload = result_payload(local, [patch])
        remote_payload = service.apply(name, [smpl_spec(RENAME_SMPL)])
        remote_payload.pop("workspace")
        assert json.dumps(local_payload, sort_keys=True) \
            == json.dumps(remote_payload, sort_keys=True)

    def test_second_apply_reuses_everything(self):
        service = make_service()
        name = opened(service)
        spec = [smpl_spec(RENAME_SMPL)]
        service.apply(name, spec)
        payload = service.apply(name, spec, profile=True)
        incremental = payload["profile"]["incremental"]
        assert incremental["fallback"] is None
        assert incremental["files_reused"] == len(FILES)
        assert incremental["files_rerun"] == 0

    def test_one_file_edit_reruns_one_file(self):
        service = make_service()
        name = opened(service)
        spec = [smpl_spec(RENAME_SMPL)]
        service.apply(name, spec)
        service.sync_files(name, files={"a.c": "void f(void) { old(); /*e*/ }\n"})
        payload = service.apply(name, spec, profile=True)
        incremental = payload["profile"]["incremental"]
        assert incremental["files_rerun"] == 1
        assert incremental["files_reused"] == len(FILES) - 1

    def test_appending_a_patch_splices_the_prefix(self):
        service = make_service()
        name = opened(service)
        service.apply(name, [smpl_spec(RENAME_SMPL)])
        payload = service.apply(name, [smpl_spec(RENAME_SMPL),
                                       smpl_spec(OTHER_SMPL, name="second")],
                                profile=True)
        incremental = payload["profile"]["incremental"]
        assert incremental["patches_total"] == 2
        assert incremental["patches_reused"] == 1
        assert payload["files"]["b.c"]["changed"]  # the appended patch ran

    def test_cookbook_by_name_and_exit_codes(self, tiny_codebase):
        service = make_service()
        service.open_workspace("w")
        service.sync_files("w", files=dict(tiny_codebase.files))
        payload = service.apply("w", [{"kind": "cookbook",
                                       "name": "likwid_instrumentation"}])
        assert payload["exit_status"] == 0
        assert payload["summary"]["matches"] > 0
        local = instrumentation.likwid_patch().apply(tiny_codebase)
        assert payload["files"]["omp.c"]["diff"] == local["omp.c"].diff()

    def test_no_match_exits_one(self):
        service = make_service()
        name = opened(service)
        payload = service.apply(name, [smpl_spec("@r@ @@\n- absent();\n")])
        assert payload["exit_status"] == 1 and not payload["matched"]

    def test_bad_specs_fail_without_poisoning(self):
        service = make_service()
        name = opened(service)
        spec = [smpl_spec(RENAME_SMPL)]
        service.apply(name, spec)
        for bad in ([], [{"kind": "cookbook", "name": "no_such"}],
                    [{"kind": "smpl", "text": "@@@@ not smpl"}],
                    [{"kind": "weird"}], [{"no": "kind"}]):
            with pytest.raises(ServiceError):
                service.apply(name, bad)
        payload = service.apply(name, spec, profile=True)
        assert payload["profile"]["incremental"]["files_reused"] == len(FILES)

    def test_patch_cache_avoids_reparsing(self):
        service = make_service()
        name = opened(service)
        spec = [smpl_spec(RENAME_SMPL)]
        service.apply(name, spec)
        service.apply(name, spec)
        stats = service.stats(name)["workspace"]
        assert stats["patches_cached"] == 1


class TestQuery:
    def test_query_reports_without_diffs_and_preserves_warm_state(self):
        service = make_service()
        name = opened(service)
        spec = [smpl_spec(RENAME_SMPL)]
        service.apply(name, spec)
        query = service.query(name, [smpl_spec(OTHER_SMPL)])
        assert "diff" not in query["files"]["b.c"]
        assert query["files"]["b.c"]["matches"] > 0
        # the exploratory query did not replace the warm apply result
        payload = service.apply(name, spec, profile=True)
        assert payload["profile"]["incremental"]["files_reused"] == len(FILES)


class TestStats:
    def test_counters_are_user_visible(self):
        service = make_service()
        name = opened(service)
        service.apply(name, [smpl_spec(RENAME_SMPL)])
        service.apply(name, [smpl_spec(RENAME_SMPL)])
        stats = service.stats(name)
        workspace = stats["workspace"]
        assert workspace["applies"] == 2
        assert workspace["parse_cache"]["misses"] > 0
        assert workspace["token_index"]["scan_misses"] > 0
        assert {"hits", "misses", "dedup_waits", "evictions"} \
            <= set(workspace["parse_cache"])
        assert stats["requests_total"] >= 4


class TestConcurrency:
    def test_parallel_applies_on_one_workspace_serialize(self):
        service = make_service()
        name = opened(service)
        spec = [smpl_spec(RENAME_SMPL)]
        reference = service.apply(name, spec)
        payloads, errors = [], []

        def hammer():
            try:
                for _ in range(5):
                    service.sync_files(name, files=dict(FILES))
                    payloads.append(service.apply(name, spec))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        reference.pop("workspace")
        for payload in payloads:
            payload.pop("workspace")
            assert json.dumps(payload, sort_keys=True) \
                == json.dumps(reference, sort_keys=True)


class TestPatchCacheBound:
    def test_authoring_loop_cannot_grow_the_cache_forever(self):
        from repro.server.service import MAX_CACHED_PATCH_SPECS

        service = make_service()
        name = opened(service)
        for revision in range(MAX_CACHED_PATCH_SPECS + 10):
            smpl = f"@r@ @@\n- old();\n+ new_call_{revision}();\n"
            service.apply(name, [smpl_spec(smpl)])
        stats = service.stats(name)["workspace"]
        assert stats["patches_cached"] <= MAX_CACHED_PATCH_SPECS


class TestCompileCacheRefcounting:
    """One workspace's spec-LRU eviction must not evict a compiled patch
    another workspace's cached spec still holds (the compile cache is
    global and fingerprint-keyed, so the service refcounts keys across
    workspaces and only drops the compiled form with the last holder)."""

    def _shared_key(self, service, spec):
        from repro.engine.compile import compile_key

        patch = service._parse_spec(spec, None)[0]
        return compile_key(patch.ast, patch.options)

    def test_flooding_one_workspace_does_not_force_a_recompile(self):
        from repro.engine.compile import MATCHER_STATS, backend_enabled
        from repro.server.service import MAX_CACHED_PATCH_SPECS

        if not backend_enabled(None):
            pytest.skip("compile cache inactive under REPRO_MATCHER=interp")

        service = make_service()
        shared = smpl_spec(RENAME_SMPL, name="shared")
        for name in ("w1", "w2"):
            service.open_workspace(name)
            service.sync_files(name, files={
                f"{name}.c": f"void {name}(void) {{ old(); }}\n"})
            service.apply(name, [shared])
        key = self._shared_key(service, shared)
        assert service._compile_refs[key] == 2

        # flood w1's spec LRU until the shared spec falls out of it; w2's
        # cached spec must keep the compiled form pinned in the global cache
        for revision in range(MAX_CACHED_PATCH_SPECS):
            service.apply("w1", [smpl_spec(
                f"@f@ @@\n- flood_{revision}();\n", name=f"f{revision}")])
        assert key not in service.workspace("w1")._patches
        assert service._compile_refs[key] == 1

        # w2 re-applies over fresh content (new content so the transform
        # memo cannot answer without a session): zero new compile misses
        service.sync_files("w2", files={
            "w2.c": "void h(void) { int z; old(); }\n"})
        misses_before = MATCHER_STATS.compile_cache_misses
        payload = service.apply("w2", [shared])
        assert payload["files"]["w2.c"]["changed"]
        assert MATCHER_STATS.compile_cache_misses == misses_before

    def test_last_holder_eviction_drops_the_compiled_form(self):
        from repro.engine import compile as compile_module
        from repro.engine.compile import backend_enabled

        if not backend_enabled(None):
            pytest.skip("compile cache inactive under REPRO_MATCHER=interp")

        service = make_service(max_workspaces=2)
        shared = smpl_spec(OTHER_SMPL, name="shared")
        for name in ("w1", "w2"):
            service.open_workspace(name)
            service.sync_files(name, files={
                f"{name}.c": f"void {name}(void) {{ gone(); }}\n"})
            service.apply(name, [shared])
        key = self._shared_key(service, shared)
        assert key in compile_module._COMPILE_CACHE

        # evicting w1 releases one reference; the compiled form survives
        service.open_workspace("w3")  # LRU pushes w1 out
        assert service._compile_refs[key] == 1
        assert key in compile_module._COMPILE_CACHE

        # closing the service releases the last one; the form is dropped
        service.close()
        assert key not in service._compile_refs
        assert key not in compile_module._COMPILE_CACHE
