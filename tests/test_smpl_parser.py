"""Tests for the semantic patch (SmPL) parser."""

import pytest

from repro.errors import SmplParseError
from repro.lang import ast_nodes as A
from repro.smpl.ast import KIND_EXPRESSION, KIND_STATEMENTS, KIND_TOPLEVEL
from repro.smpl.parser import parse_semantic_patch
from repro.cookbook import (
    bloat_removal, compiler_workaround, cuda_hip, declare_variant,
    instrumentation, kokkos_lambda, mdspan, multiversioning, openacc_openmp,
    stl_modernize, unrolling,
)


class TestRuleSplitting:
    def test_anonymous_rules_get_names(self):
        patch = parse_semantic_patch(instrumentation.paper_listing())
        assert patch.rule_names == ["rule_0", "rule_1"]
        assert all(r.is_anonymous for r in patch.patch_rules())

    def test_named_rule_and_dependencies(self):
        patch = parse_semantic_patch(stl_modernize.PAPER_LISTING)
        assert patch.rule_names == ["rl", "ah"]
        ah = patch.rule_named("ah")
        assert ah.dependencies.required == ("rl",)
        assert not ah.dependencies.is_satisfied(set())
        assert ah.dependencies.is_satisfied({"rl"})

    def test_spatch_option_line(self):
        patch = parse_semantic_patch(mdspan.PAPER_LISTING)
        assert patch.options.cxx == 23

    def test_script_rules_recognised(self):
        patch = parse_semantic_patch(cuda_hip.PAPER_LISTING_FUNCTIONS)
        kinds = [(r.when if r.is_script else "patch") for r in patch.rules]
        assert kinds == ["initialize", "patch", "script", "patch"]
        script = patch.rules[2]
        assert script.imports == [("fn", "cfe", "fn")]
        assert script.outputs == ["nf"]

    def test_garbage_outside_rule_raises(self):
        with pytest.raises(SmplParseError):
            parse_semantic_patch("this is not smpl\n@@ @@\nx\n")

    def test_missing_terminator_raises(self):
        with pytest.raises(SmplParseError):
            parse_semantic_patch("@r@\ntype T;\n")

    def test_loc_counts_nonblank_lines(self):
        patch = parse_semantic_patch(instrumentation.paper_listing())
        assert patch.loc() == len([l for l in instrumentation.paper_listing().splitlines()
                                   if l.strip()])


class TestPatternLinesAndPlusBlocks:
    def test_annotations(self):
        patch = parse_semantic_patch(mdspan.PAPER_LISTING)
        rule = patch.patch_rules()[0]
        annots = [pl.annot for pl in rule.pattern_lines]
        assert annots == ["-", "+"]

    def test_plus_block_after_anchor(self):
        patch = parse_semantic_patch(mdspan.PAPER_LISTING)
        block = patch.patch_rules()[0].plus_blocks[0]
        assert block.anchor == "after" and block.anchor_slice_line == 1
        assert block.lines == ["a[x, y, z]"]

    def test_plus_block_before_anchor(self):
        patch = parse_semantic_patch(declare_variant.PAPER_LISTING)
        block = patch.patch_rules()[0].plus_blocks[0]
        assert block.anchor == "before"
        assert len(block.lines) == 4

    def test_plus_block_skips_dots_anchor(self):
        patch = parse_semantic_patch(instrumentation.paper_listing())
        rule = patch.rules[1]
        # first block attaches after '{', second before '}' because the
        # preceding line is a lone '...'
        assert [b.anchor for b in rule.plus_blocks] == ["after", "before"]

    def test_pure_match_rule_flag(self):
        patch = parse_semantic_patch(cuda_hip.PAPER_LISTING_FUNCTIONS)
        cfe = patch.rule_named("cfe")
        hfe = patch.rule_named("hfe")
        assert cfe.is_pure_match and not hfe.is_pure_match

    def test_minus_annotated_tokens(self):
        patch = parse_semantic_patch(mdspan.PAPER_LISTING)
        rule = patch.patch_rules()[0]
        from repro.lang.lexer import ANNOT_MINUS, TokenKind
        minus = [t.value for t in rule.slice_tokens
                 if t.kind is not TokenKind.EOF and t.annot == ANNOT_MINUS]
        assert minus == ["a", "[", "x", "]", "[", "y", "]", "[", "z", "]"]


class TestClassification:
    def test_expression_pattern(self):
        patch = parse_semantic_patch(mdspan.PAPER_LISTING)
        rule = patch.patch_rules()[0]
        assert rule.pattern_kind == KIND_EXPRESSION
        assert isinstance(rule.pattern_nodes[0], A.Subscript)

    def test_statement_pattern(self):
        patch = parse_semantic_patch(instrumentation.paper_listing())
        assert patch.rules[1].pattern_kind == KIND_STATEMENTS

    def test_toplevel_pattern(self):
        patch = parse_semantic_patch(declare_variant.PAPER_LISTING)
        rule = patch.patch_rules()[0]
        assert rule.pattern_kind == KIND_TOPLEVEL
        assert isinstance(rule.pattern_nodes[0], A.FunctionDef)

    def test_column_zero_disjunction_markers(self):
        patch = parse_semantic_patch(bloat_removal.PAPER_LISTING)
        rule_c = patch.rule_named("c")
        fn = rule_c.pattern_nodes[0]
        disj = [n for n in A.walk(fn) if isinstance(n, A.Disjunction)]
        assert disj and len(disj[0].branches) == 2

    def test_closing_paren_of_for_header_not_a_marker(self):
        patch = parse_semantic_patch(unrolling.PAPER_LISTING_P0)
        rule = patch.rule_named("p0")
        assert rule.pattern_kind == KIND_STATEMENTS
        assert isinstance(rule.pattern_nodes[0], A.ForStmt)

    def test_unparsable_pattern_raises(self):
        bad = "@broken@\ntype T;\n@@\nfor (T i=0 i < n; ++i) { }\n"
        with pytest.raises(SmplParseError):
            parse_semantic_patch(bad)


class TestAllCookbookListingsParse:
    @pytest.mark.parametrize("text", [
        instrumentation.paper_listing(),
        declare_variant.PAPER_LISTING,
        multiversioning.PAPER_LISTING_MATCH_AVX512,
        bloat_removal.PAPER_LISTING,
        unrolling.PAPER_LISTING_P0,
        unrolling.PAPER_LISTING_P1_R1,
        mdspan.PAPER_LISTING,
        cuda_hip.PAPER_LISTING_FUNCTIONS,
        cuda_hip.PAPER_LISTING_TYPES,
        cuda_hip.PAPER_LISTING_CHEVRON,
        openacc_openmp.PAPER_LISTING,
        stl_modernize.PAPER_LISTING,
        kokkos_lambda.PAPER_LISTING,
        compiler_workaround.PAPER_LISTING,
    ], ids=lambda t: t.strip().splitlines()[0][:20])
    def test_parses(self, text):
        patch = parse_semantic_patch(text)
        assert patch.rules
