"""Tests for the code-base driver: parallel jobs, parse cache, CLI surface."""

import pytest

from repro import CodeBase, SemanticPatch, __version__
from repro.engine import Engine
from repro.engine.cache import TreeCache
from repro.engine.driver import Driver, resolve_jobs
from repro.cli.spatch import main as spatch_main


RENAME_PATCH = "@r@ @@\n- old_api();\n+ new_api();\n"


def _mixed_files(n_irrelevant: int = 6) -> dict[str, str]:
    files = {"match_0.c": "void f(void) { old_api(); }\n",
             "match_1.c": "void g(void) { before(); old_api(); }\n"}
    for i in range(n_irrelevant):
        files[f"plain_{i}.c"] = f"int value_{i}(int a) {{ return a + {i}; }}\n"
    return files


class TestDriver:
    def test_results_keep_input_order(self):
        files = _mixed_files()
        patch = SemanticPatch.from_string(RENAME_PATCH)
        result = Driver(patch.ast, options=patch.options).run(files)
        assert list(result.files) == list(files)

    def test_stats_report_skips_and_gates(self):
        files = _mixed_files(6)
        patch = SemanticPatch.from_string(RENAME_PATCH)
        driver = Driver(patch.ast, options=patch.options)
        result = driver.run(files)
        assert result.stats.files_total == 8
        assert result.stats.files_skipped == 6
        assert 0 < result.stats.skip_rate < 1
        assert "skipped without parsing: 6" in result.stats.describe()
        assert result["match_0.c"].changed
        assert not result["plain_0.c"].changed

    def test_prefilter_off_parses_everything(self):
        files = _mixed_files(3)
        patch = SemanticPatch.from_string(RENAME_PATCH)
        driver = Driver(patch.ast, options=patch.options, prefilter=False)
        result = driver.run(files)
        assert result.stats.files_skipped == 0
        assert result["match_0.c"].changed

    def test_tree_cache_hits_on_repeated_application(self):
        files = _mixed_files(2)
        patch = SemanticPatch.from_string(RENAME_PATCH)
        cache = TreeCache()
        for expect_hits in (False, True):
            driver = Driver(patch.ast, options=patch.options,
                            prefilter=False, tree_cache=cache)
            result = driver.run(files)
            assert result["match_0.c"].changed
            assert (result.stats.cache_hits > 0) is expect_hits
        assert len(cache) > 0

    def test_tree_cache_is_bounded(self):
        cache = TreeCache(max_entries=2)
        from repro.options import DEFAULT_OPTIONS
        for i in range(5):
            cache.get_or_parse(f"int x_{i};\n", f"f{i}.c", DEFAULT_OPTIONS)
        assert len(cache) == 2

    def test_engine_apply_to_files_still_works(self):
        """The historical entry point remains a thin wrapper over the driver
        with seed semantics (serial, no prefilter)."""
        files = _mixed_files(2)
        patch = SemanticPatch.from_string(RENAME_PATCH)
        result = Engine(patch.ast, options=patch.options).apply_to_files(files)
        assert result["match_0.c"].changed
        assert list(result.files) == list(files)
        assert result.stats.files_skipped == 0

    def test_engine_apply_to_file_still_works(self):
        patch = SemanticPatch.from_string(RENAME_PATCH)
        engine = Engine(patch.ast, options=patch.options)
        file_result = engine.apply_to_file("a.c", "void f(void) { old_api(); }\n")
        assert "new_api();" in file_result.text

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs("auto") >= 1
        assert resolve_jobs(None) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestParallelJobs:
    def test_parallel_results_identical_to_serial(self):
        from repro.cookbook import cuda_hip
        from repro.workloads import cuda_app

        codebase = cuda_app.generate(n_files=3, seed=11)
        codebase = codebase.with_file("plain.c", "int zero(void) { return 0; }\n")
        patch = cuda_hip.cuda_to_hip_patch()
        serial = patch.apply(codebase, jobs=1, prefilter=False)
        parallel = patch.apply(codebase, jobs=2, prefilter=True)
        assert list(parallel.files) == list(serial.files)
        for name in serial.files:
            assert parallel[name].text == serial[name].text
        assert parallel.total_matches == serial.total_matches

    def test_parallel_falls_back_when_finalize_aggregates_scripts(self):
        """A patch combining per-file scripts with a finalize rule may carry
        state across files; the driver must refuse to parallelise it."""
        text = ("@initialize:python@ @@\nseen = []\n\n"
                "@a@\nidentifier f;\n@@\nmarked(f);\n\n"
                "@script:python s@\nf << a.f;\n@@\nseen.append(f)\n\n"
                "@finalize:python@ @@\nprint('seen', len(seen))\n")
        patch = SemanticPatch.from_string(text)
        driver = Driver(patch.ast, options=patch.options, jobs=4)
        result = driver.run({"a.c": "void t(void) { marked(x); }\n",
                             "b.c": "void u(void) { marked(y); }\n"})
        assert result.stats.jobs_used == 1

    def test_initialize_runs_exactly_once_for_script_free_parallel_patch(self, tmp_path):
        """Side-effecting initialize rules must not be duplicated across
        workers when no per-file script needs them."""
        marker = tmp_path / "init.log"
        text = (f"@initialize:python@ @@\n"
                f"open({str(marker)!r}, 'a').write('ran\\n')\n\n"
                f"@r@ @@\n- old_api();\n+ new_api();\n")
        patch = SemanticPatch.from_string(text)
        driver = Driver(patch.ast, options=patch.options, jobs=2, prefilter=False)
        result = driver.run(_mixed_files(2))
        assert result.stats.jobs_used == 2
        assert result["match_0.c"].changed
        assert marker.read_text().count("ran") == 1

    def test_parallel_used_for_script_free_patches(self):
        patch = SemanticPatch.from_string(RENAME_PATCH)
        driver = Driver(patch.ast, options=patch.options, jobs=2, prefilter=False)
        result = driver.run(_mixed_files(2))
        assert result.stats.jobs_used == 2
        assert result["match_0.c"].changed


class TestEncodingRobustness:
    def test_from_dir_tolerates_latin1_comments(self, tmp_path):
        latin1 = tmp_path / "legacy.c"
        latin1.write_bytes(b"/* r\xe9sum\xe9 of the kernel */\nvoid f(void) { old_api(); }\n")
        codebase = CodeBase.from_dir(tmp_path)
        assert "legacy.c" in codebase
        assert "old_api" in codebase["legacy.c"]

    def test_cli_accepts_latin1_file(self, tmp_path, capsys):
        target = tmp_path / "legacy.c"
        target.write_bytes(b"// \xe9\xe9\nvoid f(void) { old_api(); }\n")
        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_PATCH)
        rc = spatch_main(["--sp-file", str(cocci), str(target)])
        assert rc == 0
        assert "new_api" in capsys.readouterr().out

    def test_in_place_preserves_non_utf8_bytes(self, tmp_path, capsys):
        """surrogateescape round-trips stray Latin-1 bytes: an in-place
        rewrite must not corrupt untouched lines."""
        target = tmp_path / "legacy.c"
        target.write_bytes(b"/* r\xe9sum\xe9 */\nvoid f(void) { old_api(); }\n")
        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_PATCH)
        rc = spatch_main(["--sp-file", str(cocci), "--in-place", str(target)])
        assert rc == 0
        raw = target.read_bytes()
        assert b"new_api" in raw
        assert b"/* r\xe9sum\xe9 */" in raw  # original bytes, not U+FFFD

    def test_codebase_round_trip_preserves_non_utf8_bytes(self, tmp_path):
        (tmp_path / "in").mkdir()
        (tmp_path / "in" / "legacy.c").write_bytes(b"// caf\xe9\nint x;\n")
        codebase = CodeBase.from_dir(tmp_path / "in")
        codebase.write_to(tmp_path / "out")
        assert (tmp_path / "out" / "legacy.c").read_bytes() == \
            b"// caf\xe9\nint x;\n"


class TestCliExitCodes:
    def _write_patch(self, tmp_path) -> str:
        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_PATCH)
        return str(cocci)

    def test_zero_on_match(self, tmp_path, capsys):
        target = tmp_path / "a.c"
        target.write_text("void f(void) { old_api(); }\n")
        assert spatch_main(["--sp-file", self._write_patch(tmp_path),
                            str(target)]) == 0

    def test_one_on_no_match(self, tmp_path, capsys):
        target = tmp_path / "a.c"
        target.write_text("void f(void) { untouched(); }\n")
        assert spatch_main(["--sp-file", self._write_patch(tmp_path),
                            str(target)]) == 1

    def test_two_on_missing_target(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            spatch_main(["--sp-file", self._write_patch(tmp_path),
                         str(tmp_path / "nope.c")])
        assert excinfo.value.code == 2

    def test_two_on_bad_jobs(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            spatch_main(["--sp-file", self._write_patch(tmp_path),
                         "--jobs", "zero", str(tmp_path)])
        assert excinfo.value.code == 2

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            spatch_main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_profile_and_flags_smoke(self, tmp_path, capsys):
        target = tmp_path / "a.c"
        target.write_text("void f(void) { old_api(); }\n")
        rc = spatch_main(["--sp-file", self._write_patch(tmp_path),
                          "--jobs", "1", "--no-prefilter", "--profile",
                          str(target)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "profile" in captured.err
        assert "parse cache" in captured.err

    def test_in_place_exit_codes(self, tmp_path, capsys):
        target = tmp_path / "a.c"
        target.write_text("void f(void) { old_api(); }\n")
        rc = spatch_main(["--sp-file", self._write_patch(tmp_path),
                          "--in-place", str(target)])
        assert rc == 0 and "new_api" in target.read_text()
        # second run: nothing left to match
        rc = spatch_main(["--sp-file", self._write_patch(tmp_path),
                          "--in-place", str(target)])
        assert rc == 1
