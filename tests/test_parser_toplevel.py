"""Tests for top-level (translation unit) parsing."""

from repro.lang import ast_nodes as A
from repro.lang.parser import parse_source
from repro.options import SpatchOptions


class TestDirectives:
    def test_includes(self, simple_tree):
        includes = [d for d in simple_tree.unit.decls if isinstance(d, A.IncludeDirective)]
        assert [i.target for i in includes] == ["omp.h", "util.h"]
        assert includes[0].system and not includes[1].system
        assert includes[0].header_text == "<omp.h>"

    def test_define(self, simple_tree):
        defines = [d for d in simple_tree.unit.decls if isinstance(d, A.DefineDirective)]
        assert len(defines) == 1 and "N 1024" in defines[0].raw

    def test_pragma_inside_function(self, simple_tree):
        pragmas = [n for n in A.walk(simple_tree.unit) if isinstance(n, A.PragmaDirective)]
        assert pragmas and pragmas[0].words[:2] == ["omp", "parallel"]


class TestStructsAndGlobals:
    def test_struct_definition(self, simple_tree):
        structs = [d for d in simple_tree.unit.decls if isinstance(d, A.StructDef)]
        assert structs[0].name == "particle"
        field_names = [decl.declarators[0].name for decl in structs[0].members]
        assert field_names == ["pos", "mass"]

    def test_typedef_struct(self):
        tree = parse_source("typedef struct { double x, y; } point_t;\npoint_t origin;", "t.c")
        struct = tree.unit.decls[0]
        assert isinstance(struct, A.StructDef) and struct.typedef_name == "point_t"
        decl = tree.unit.decls[1]
        assert isinstance(decl, A.Declaration) and decl.type.text == "point_t"

    def test_enum(self):
        tree = parse_source("enum color { RED, GREEN = 3, BLUE };", "t.c")
        enum = tree.unit.decls[0]
        assert enum.keyword == "enum" and enum.enumerators == ["RED", "GREEN", "BLUE"]

    def test_global_array(self, simple_tree):
        globals_ = [d for d in simple_tree.unit.decls if isinstance(d, A.Declaration)]
        assert globals_[0].declarators[0].name == "P"
        assert len(globals_[0].declarators[0].arrays) == 1

    def test_typedef_plain(self):
        tree = parse_source("typedef unsigned long long ticks;\nticks t0;", "t.c")
        assert "ticks" in tree.known_types
        assert isinstance(tree.unit.decls[1], A.Declaration)


class TestFunctions:
    def test_function_names(self, simple_tree):
        fns = [d for d in simple_tree.unit.decls if isinstance(d, A.FunctionDef)]
        assert [f.name for f in fns] == ["kernel_density", "find_flag"]

    def test_specifiers_and_types(self, simple_tree):
        fn = [d for d in simple_tree.unit.decls if isinstance(d, A.FunctionDef)][0]
        assert "static" in fn.specifiers
        assert fn.return_type.text == "double"

    def test_parameters(self, simple_tree):
        fn = [d for d in simple_tree.unit.decls if isinstance(d, A.FunctionDef)][0]
        params = fn.params.params
        assert params[0].type.text == "const struct particle"
        assert params[0].pointer == "*"
        assert params[1].name == "n"

    def test_prototype(self):
        tree = parse_source("double norm(const double *x, int n);", "t.c")
        fn = tree.unit.decls[0]
        assert isinstance(fn, A.FunctionDef) and fn.is_prototype and fn.body is None

    def test_attributes(self):
        code = '__attribute__((target("avx512")))\nstatic int f(int x) { return x; }'
        tree = parse_source(code, "t.c")
        fn = tree.unit.decls[0]
        assert fn.attributes[0].name == "target"
        assert tree.node_text(fn.attributes[0].args[0]) == '"avx512"'

    def test_pointer_return(self):
        tree = parse_source("double *alloc_buffer(int n) { return 0; }", "t.c")
        fn = tree.unit.decls[0]
        assert fn.pointer == "*" and fn.name == "alloc_buffer"

    def test_varargs(self):
        tree = parse_source("int log_msg(const char *fmt, ...) { return 0; }", "t.c")
        fn = tree.unit.decls[0]
        assert isinstance(fn.params.params[-1], A.DotsParam)

    def test_cuda_global_specifier(self):
        code = "__global__ void k(double *x, int n) { x[0] = n; }"
        tree = parse_source(code, "t.cu")
        fn = tree.unit.decls[0]
        assert "__global__" in fn.specifiers


class TestErrorTolerance:
    def test_unknown_construct_becomes_raw_decl(self):
        code = "template <typename T> T max3(T a, T b) { return a; }\nint ok;"
        tree = parse_source(code, "t.cpp")
        kinds = [type(d).__name__ for d in tree.unit.decls]
        assert "RawDecl" in kinds
        assert kinds[-1] == "Declaration"

    def test_namespace_passthrough(self):
        code = "namespace impl {\nint hidden;\n}\ndouble visible;"
        tree = parse_source(code, "t.cpp", options=SpatchOptions(cxx=17))
        kinds = [type(d).__name__ for d in tree.unit.decls]
        assert kinds[0] == "RawDecl" and kinds[-1] == "Declaration"

    def test_raw_decl_preserves_text(self):
        code = "@!garbage!@;\nint ok;"
        tree = parse_source(code, "t.c")
        raw = [d for d in tree.unit.decls if isinstance(d, A.RawDecl)]
        assert raw and "garbage" in raw[0].text

    def test_whole_workload_files_have_no_raw_nodes(self):
        from repro.workloads import gadget, openmp_kernels

        for codebase in (gadget.generate(n_files=1, loops_per_file=2, seed=0),
                         openmp_kernels.generate(n_files=1, seed=0)):
            for name, text in codebase.items():
                tree = parse_source(text, name)
                raws = [n for n in A.walk(tree.unit)
                        if isinstance(n, (A.RawDecl, A.RawStmt))]
                assert raws == [], f"unparsed constructs in {name}"


class TestOwnTokens:
    def test_own_token_indices_cover_fixed_syntax(self, simple_tree):
        fn = [d for d in simple_tree.unit.decls if isinstance(d, A.FunctionDef)][1]
        own_values = [simple_tree.tokens[i].value for i in simple_tree.own_token_indices(fn)]
        # the name is a plain string field (not a child node), so it is an
        # own token of the function; parentheses belong to the parameter list
        assert own_values == ["find_flag"]
        param_own = [simple_tree.tokens[i].value
                     for i in simple_tree.own_token_indices(fn.params)]
        assert "(" in param_own and ")" in param_own

    def test_children_not_in_own_tokens(self, simple_tree):
        fn = [d for d in simple_tree.unit.decls if isinstance(d, A.FunctionDef)][1]
        own = set(simple_tree.own_token_indices(fn))
        body_tokens = set(range(fn.body.start, fn.body.end))
        assert not (own & body_tokens)
