"""Tests for the pretty printer (and print→reparse round trips)."""

import pytest

from repro.lang import ast_nodes as A
from repro.lang.parser import parse_source
from repro.lang.printer import CPrinter, to_source
from repro.options import SpatchOptions


def reparse(text: str, cxx=False):
    return parse_source(text, "t.c", options=SpatchOptions(cxx=17) if cxx else SpatchOptions())


class TestExpressionPrinting:
    @pytest.mark.parametrize("code", [
        "int f(void) { return a + b * c; }",
        "int f(void) { return p[i].pos[0]; }",
        "int f(void) { return cond ? x : y; }",
        "int f(void) { g(a, b, h(c)); return 0; }",
        "int f(void) { x += (double)n * 0.5; return 0; }",
    ])
    def test_round_trip_structure(self, code):
        tree = reparse(code)
        printed = to_source(tree.unit)
        tree2 = reparse(printed)
        # same node-kind skeleton after printing and reparsing
        kinds1 = [type(n).__name__ for n in A.walk(tree.unit)]
        kinds2 = [type(n).__name__ for n in A.walk(tree2.unit)]
        assert kinds1 == kinds2

    def test_kernel_launch(self):
        tree = reparse("void f(void) { k<<<g, b>>>(x, y); }", cxx=True)
        printed = to_source(tree.unit)
        assert "k<<<g, b>>>(x, y)" in printed


class TestStatementPrinting:
    def test_for_loop(self):
        tree = reparse("void f(int n) { for (int i = 0; i < n; ++i) { s += i; } }")
        out = to_source(tree.unit)
        assert "for (int i = 0; i < n; ++i)" in out

    def test_if_else(self):
        tree = reparse("void f(void) { if (a) { x = 1; } else { x = 2; } }")
        out = to_source(tree.unit)
        assert "else" in out

    def test_pragma_and_include(self):
        tree = reparse('#include <omp.h>\nvoid f(void) {\n#pragma omp parallel\n{ x = 1; }\n}')
        out = to_source(tree.unit)
        assert "#include <omp.h>" in out
        assert "#pragma omp parallel" in out

    def test_struct(self):
        tree = reparse("struct p { double x; double v[3]; };")
        out = to_source(tree.unit)
        assert out.startswith("struct p {")
        assert "double v[3];" in out

    def test_attribute_function(self):
        tree = reparse('__attribute__((target("avx2"))) int f(int a) { return a; }')
        out = to_source(tree.unit)
        assert '__attribute__((target("avx2")))' in out

    def test_range_for(self):
        tree = reparse("void f(void) { for (int &v : vals) v = 0; }", cxx=True)
        out = to_source(tree.unit)
        assert "for (int &v : vals)" in out

    def test_custom_indent(self):
        tree = reparse("void f(void) { x = 1; }")
        out = CPrinter(indent="  ").print(tree.unit)
        assert "\n  x = 1;" in out


class TestPatternNodePrinting:
    def test_dots_and_metavars(self):
        assert to_source(A.DotsStmt()) == "..."
        assert to_source(A.MetaStmt(name="A")) == "A"
        assert to_source(A.MetaParamList(name="PL")) == "PL"
        assert to_source(A.DotsExpr()) == "..."

    def test_disjunction(self):
        node = A.Disjunction(branches=[A.Ident(name="a"), A.Ident(name="b")])
        assert to_source(node) == r"\( a \| b \)"

    def test_unknown_node_raises(self):
        class Weird(A.Node):
            pass

        with pytest.raises(TypeError):
            to_source(Weird())


class TestSemanticRoundTrip:
    def test_interpreter_agrees_on_printed_code(self):
        from repro.eval import Interpreter

        code = """\
double poly(double x, int n) {
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
        acc = acc * x + (double)i;
    }
    return acc;
}
"""
        tree = reparse(code)
        printed = to_source(tree.unit)
        original = Interpreter(code).call("poly", 1.5, 6)
        reprinted = Interpreter(printed).call("poly", 1.5, 6)
        assert original == pytest.approx(reprinted)
