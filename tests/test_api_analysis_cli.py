"""Tests for the public API, the analysis helpers and the CLI."""

import pytest

from repro import CodeBase, SemanticPatch, apply_patch
from repro.analysis import (
    format_table, render_experiment, robustness_cuda, robustness_openacc,
    robustness_unroll, scaling_sweep, terseness,
)
from repro.cli.spatch import main as spatch_main
from repro.cookbook import instrumentation, mdspan
from repro.workloads import cuda_app, openacc_app, openmp_kernels, unrolled


class TestCodeBase:
    def test_from_files_and_access(self, tiny_codebase):
        assert len(tiny_codebase) == 2
        assert "omp.c" in tiny_codebase
        assert "daxpy" in tiny_codebase["omp.c"]
        assert sorted(tiny_codebase.names()) == ["omp.c", "unrolled.c"]

    def test_loc_and_total_lines(self, tiny_codebase):
        assert 0 < tiny_codebase.loc() <= tiny_codebase.total_lines()

    def test_round_trip_directory(self, tmp_path, tiny_codebase):
        tiny_codebase.write_to(tmp_path)
        loaded = CodeBase.from_dir(tmp_path)
        assert loaded.files == tiny_codebase.files

    def test_with_file_is_functional(self, tiny_codebase):
        extended = tiny_codebase.with_file("extra.c", "int x;\n")
        assert "extra.c" in extended and "extra.c" not in tiny_codebase

    def test_parse_all(self, tiny_codebase):
        trees = tiny_codebase.parse()
        assert set(trees) == set(tiny_codebase.names())


class TestSemanticPatchApi:
    def test_from_string_and_describe(self):
        patch = SemanticPatch.from_string(instrumentation.paper_listing(), name="likwid")
        assert "likwid" in patch.name
        assert "rule_0" in patch.describe()
        assert patch.loc() > 5

    def test_from_path(self, tmp_path):
        p = tmp_path / "x.cocci"
        p.write_text(mdspan.PAPER_LISTING)
        patch = SemanticPatch.from_path(p)
        assert patch.rule_names == ["tomultiindex"]
        assert patch.options.cxx == 23

    def test_embedded_option_lines_survive_explicit_options(self, tmp_path):
        """A `# spatch --c++=N` line inside the patch must raise the
        language level even when explicit options are passed (the CLI
        always passes some) — it used to be silently dropped, so every
        --sp-file run lost the patch's declared C++ level."""
        from repro import SpatchOptions

        p = tmp_path / "x.cocci"
        p.write_text(mdspan.PAPER_LISTING)
        patch = SemanticPatch.from_path(p, options=SpatchOptions())
        assert patch.options.cxx == 23
        # an explicit command-line level still wins over the embedded one
        patch = SemanticPatch.from_path(p, options=SpatchOptions(cxx=17))
        assert patch.options.cxx == 17

    def test_apply_and_transform(self, tiny_codebase):
        patch = instrumentation.likwid_patch()
        result = patch.apply(tiny_codebase)
        assert result.summary()["changed_files"] == 1
        transformed = patch.transform(tiny_codebase)
        assert "LIKWID_MARKER_START" in transformed["omp.c"]
        assert transformed["unrolled.c"] == tiny_codebase["unrolled.c"]

    def test_apply_patch_helper(self):
        result = apply_patch("@r@ @@\n- foo();\n+ bar();\n", "void f(void) { foo(); }\n")
        assert "bar();" in result.text

    def test_file_result_diff_and_lines(self, omp_region_code):
        result = instrumentation.likwid_patch().apply_to_source(omp_region_code)
        diff = result.diff()
        assert diff.startswith("--- a/")
        assert any("LIKWID_MARKER_START" in l for l in result.added_lines())
        assert result.removed_lines() == []

    def test_patch_result_aggregation(self, tiny_codebase):
        result = instrumentation.likwid_patch().apply(tiny_codebase)
        assert result.total_matches == (result.matches_of("add_header")
                                        + result.matches_of("instrument"))
        assert result.lines_added() >= 3
        assert result["omp.c"].changed
        assert result.get("missing.c") is None


class TestAnalysis:
    def test_terseness_leverage_above_one(self):
        codebase = openmp_kernels.generate(n_files=3, kernels_per_file=4,
                                           regions_per_file=3, seed=0)
        row = terseness("E1", instrumentation.likwid_patch(), codebase)
        assert row.sites_matched > 5
        assert row.lines_changed > row.patch_loc
        assert row.leverage > 1.0

    def test_robustness_cuda_shapes(self):
        codebase = cuda_app.generate(n_files=1, drivers_per_file=3, adversarial=True, seed=0)
        semantic, textual = robustness_cuda(codebase)
        assert semantic.correct
        assert not textual.correct
        assert textual.missed + textual.spurious + textual.broken > 0

    def test_robustness_openacc_shapes(self):
        codebase = openacc_app.generate(n_files=1, loops_per_file=4, adversarial=True, seed=0)
        semantic, textual = robustness_openacc(codebase)
        assert semantic.correct
        assert textual.broken > 0

    def test_robustness_unroll_ablation(self):
        codebase = unrolled.generate(n_files=1, unrolled_per_file=3, impostors_per_file=2,
                                     plain_per_file=1, seed=1)
        rows = {r.tool: r for r in robustness_unroll(codebase)}
        assert rows["semantic-patch (checked)"].correct
        assert not rows["sed-reroll"].correct
        assert rows["semantic-patch (p0)"].spurious >= 1
        assert rows["semantic-patch (p1r1)"].spurious == 0

    def test_scaling_sweep_monotone_loc(self):
        rows = scaling_sweep(
            instrumentation.likwid_patch,
            lambda size: openmp_kernels.generate(n_files=size, kernels_per_file=2,
                                                 regions_per_file=2, seed=0),
            sizes=[1, 2])
        assert rows[0].workload_loc < rows[1].workload_loc
        assert all(r.seconds > 0 for r in rows)
        assert rows[1].matches > rows[0].matches

    def test_table_rendering(self):
        codebase = unrolled.generate(n_files=1, unrolled_per_file=2, seed=0)
        rows = robustness_unroll(codebase, strategies=("checked",))
        text = format_table(rows)
        assert "tool" in text and "semantic-patch (checked)" in text
        block = render_experiment("Q2", "AST beats text", rows)
        assert block.startswith("== Q2 ==")


class TestCli:
    def test_diff_output(self, tmp_path, capsys):
        target = tmp_path / "omp.c"
        target.write_text("#include <omp.h>\nvoid f(void) {\n#pragma omp parallel\n{ x(); }\n}\n")
        cocci = tmp_path / "mark.cocci"
        cocci.write_text(instrumentation.paper_listing())
        rc = spatch_main(["--sp-file", str(cocci), str(target), "--report"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "+#include <likwid-marker.h>" in captured.out
        assert target.read_text().count("LIKWID") == 0  # not in place

    def test_in_place_rewrite(self, tmp_path, capsys):
        target = tmp_path / "code.c"
        target.write_text("void f(void) { old(); }\n")
        cocci = tmp_path / "r.cocci"
        cocci.write_text("@r@ @@\n- old();\n+ new_call();\n")
        rc = spatch_main(["--sp-file", str(cocci), "--in-place", str(target)])
        assert rc == 0
        assert "new_call();" in target.read_text()

    def test_cookbook_listing_and_application(self, tmp_path, capsys):
        rc = spatch_main(["--list-cookbook"])
        names = capsys.readouterr().out.split()
        assert rc == 0 and "cuda_to_hip" in names
        target = tmp_path / "a.cu"
        target.write_text("void f(cudaStream_t s) { cudaFree(0); }\n")
        rc = spatch_main(["--cookbook", "cuda_to_hip", str(target)])
        out = capsys.readouterr().out
        assert rc == 0 and "hipFree" in out

    def test_missing_patch_argument_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            spatch_main([str(tmp_path)])

    def test_unknown_target_errors(self, tmp_path):
        cocci = tmp_path / "r.cocci"
        cocci.write_text("@r@ @@\n- x();\n")
        with pytest.raises(SystemExit):
            spatch_main(["--sp-file", str(cocci), str(tmp_path / "missing.c")])
