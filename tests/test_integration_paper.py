"""Integration tests: every Section-3 listing of the paper applied end-to-end
to a code fragment of the shape the paper describes."""

import pytest

from repro import SemanticPatch, SpatchOptions
from repro.cookbook import (
    bloat_removal, compiler_workaround, cuda_hip, declare_variant,
    instrumentation, kokkos_lambda, mdspan, multiversioning, openacc_openmp,
    stl_modernize, unrolling,
)
from repro.workloads import kokkos_exercise


def apply(listing: str, code: str, cxx: int | None = None, filename="paper.c"):
    options = SpatchOptions(cxx=cxx) if cxx else None
    return SemanticPatch.from_string(listing, options=options) \
        .apply_to_source(code, filename)


class TestSection3Listings:
    def test_likwid_instrumentation(self, omp_region_code):
        result = apply(instrumentation.paper_listing(), omp_region_code)
        assert "#include <likwid-marker.h>" in result.text
        start = result.text.index("LIKWID_MARKER_START(__func__);")
        stop = result.text.index("LIKWID_MARKER_STOP(__func__);")
        assert start < stop

    def test_declare_variant(self):
        code = ("#include <math.h>\n\n"
                "double norm_kernel(const double *x, int n) {\n"
                "    double s = 0.0;\n"
                "    for (int i = 0; i < n; ++i) s += x[i] * x[i];\n"
                "    return sqrt(s);\n}\n\n"
                "void helper(double *x) { x[0] = 1.0; }\n")
        result = apply(declare_variant.PAPER_LISTING, code)
        assert "double avx512_norm_kernel (const double *x, int n)" in result.text
        assert "double avx10_norm_kernel" in result.text
        assert result.text.count("#pragma omp declare variant") == 2
        assert "avx512_helper" not in result.text

    def test_multiversioning_attribute_match(self):
        code = ('__attribute__((target("avx512")))\n'
                "double dotp(const double *a, const double *b, int n)\n{\n"
                "    double s = 0.0;\n    return s;\n}\n")
        result = apply(multiversioning.PAPER_LISTING_MATCH_AVX512, code)
        assert "avx512-specific code only" in result.text

    def test_bloat_removal(self):
        signature = "double dotp(const double *a, const double *b, int n)"
        body = "{\n    double s = 0.0;\n    return s;\n}\n"
        code = "\n".join([
            f'__attribute__((target("default")))\n{signature}\n{body}',
            f'__attribute__((target("avx2")))\n{signature}\n{body}',
            f'__attribute__((target("avx512")))\n{signature}\n{body}',
            f'__attribute__((target("default")))\ndouble other(const double *a, int n)\n'
            "{\n    return a[0];\n}\n",
        ])
        result = apply(bloat_removal.PAPER_LISTING, code)
        assert "avx2" not in result.text and "avx512" not in result.text
        assert result.text.count("dotp") == 1
        # 'other' had no obsolete clones, so its default attribute stays
        assert result.text.count('target("default")') == 1

    def test_unroll_p0(self, unrolled_code):
        result = apply(unrolling.PAPER_LISTING_P0, unrolled_code)
        assert "#pragma omp unroll partial(4)" in result.text
        assert "idx+3" not in result.text
        assert "idx+=4" not in result.text and "++idx" in result.text

    def test_unroll_p1_r1(self, unrolled_code):
        result = apply(unrolling.PAPER_LISTING_P1_R1, unrolled_code)
        assert result.text.count("y[idx+0] = a * x[idx+0];") == 1
        assert "idx+1" not in result.text

    def test_mdspan(self):
        code = "void f(int n) { c = a[x0][y0][z0] + a[x0+1][y0][z0]; d = b[x0][y0][z0]; }\n"
        result = apply(mdspan.PAPER_LISTING, code, filename="grid.cpp")
        assert "a[x0, y0, z0]" in result.text
        assert "a[x0+1, y0, z0]" in result.text
        assert "b[x0][y0][z0]" in result.text  # rule names only array 'a'

    def test_cuda_function_dictionary(self):
        code = ("double sample(curandState *st) {\n"
                "    double r = curand_uniform_double(st);\n"
                "    double q = cos(r);\n    return q;\n}\n")
        result = apply(cuda_hip.PAPER_LISTING_FUNCTIONS, code)
        assert "rocrand_uniform_double(st)" in result.text
        assert "cos(r)" in result.text

    def test_cuda_type_dictionary(self):
        code = "void f(void) {\n    __half h;\n    double keep;\n}\n"
        result = apply(cuda_hip.PAPER_LISTING_TYPES, code)
        assert "rocblas_half h;" in result.text
        assert "double keep;" in result.text

    def test_cuda_chevron(self):
        code = "void run(double *a, double *b, int n, cudaStream_t s) {\n" \
               "    saxpy_kernel<<<n/256, 256, 0, s>>>(a, b, n);\n}\n"
        result = apply(cuda_hip.PAPER_LISTING_CHEVRON, code)
        assert "hipLaunchKernelGGL(saxpy_kernel,n/256,256,0,s,a, b, n);" in result.text

    def test_openacc_skeleton(self):
        code = ("void saxpy(int n, float a, float *x, float *y) {\n"
                "    #pragma acc parallel loop copyin(x[0:n])\n"
                "    for (int i = 0; i < n; ++i) y[i] = a * x[i] + y[i];\n}\n")
        result = apply(openacc_openmp.PAPER_LISTING, code)
        assert "#pragma omp kernels copy(a)" in result.text
        assert "#pragma acc" not in result.text

    def test_stl_find(self):
        code = ("#include <iostream>\n#include <vector>\n\n"
                "bool has_magic(std::vector<int> &values) {\n"
                "    bool found = false;\n"
                "    int checked = 0;\n"
                "    for ( int &v : values )\n"
                "      if ( v == 42 )\n      {\n"
                '        std::cout << "hit" << std::endl;\n'
                "        found = true;\n        break;\n      }\n"
                "    return found;\n}\n")
        result = apply(stl_modernize.PAPER_LISTING, code, filename="search.cpp")
        assert "find(begin(values),end(values),42)" in result.text
        assert "#include <algorithm>" in result.text
        assert "std::cout" not in result.text  # diagnostics removed by '...'
        assert "int checked = 0;" in result.text  # untouched context survives

    def test_kokkos_lambda(self):
        codebase = kokkos_exercise.generate(n_files=1)
        result = SemanticPatch.from_string(kokkos_lambda.PAPER_LISTING).apply(codebase)
        text = result.changed_files[0].text
        assert "#include <Kokkos_Core.hpp>" in text
        # three initialisation loops become parallel_for, the dot-product
        # accumulation becomes parallel_reduce
        assert text.count("parallel_for(") == 3
        assert text.count("parallel_reduce(") == 1
        assert "KOKKOS_LAMBDA(const int i)" in text

    def test_compiler_workaround(self):
        code = ("static int rsb__BCSR_spmv_sasa_double_complex_C__tN_r1_c1_uu_sH_dE_uG"
                "(const double *VA, double *y)\n{\n    int k;\n"
                "    for (k = 0; k < 4; ++k) y[k] += VA[k];\n    return 0;\n}\n\n"
                "static int rsb__BCSR_spmv_uaua_double(const double *VA, double *y)\n"
                "{\n    return 0;\n}\n")
        result = apply(compiler_workaround.PAPER_LISTING, code)
        assert result.text.count("#pragma GCC push_options") == 1
        assert result.text.count("#pragma GCC pop_options") == 1
        # the pragmas enclose only the affected kernel
        before, after = result.text.split("rsb__BCSR_spmv_uaua_double", 1)
        assert "pop_options" in before and "push_options" not in after


class TestReplayability:
    def test_patched_output_is_reproducible(self, omp_region_code):
        """Applying the same patch twice to the pristine code gives identical
        output — the 'replayable refactoring' workflow of Section 4."""
        patch = SemanticPatch.from_string(instrumentation.paper_listing())
        first = patch.apply_to_source(omp_region_code).text
        second = patch.apply_to_source(omp_region_code).text
        assert first == second

    def test_patch_is_terser_than_its_effect(self):
        from repro.workloads import openmp_kernels

        codebase = openmp_kernels.generate(n_files=4, kernels_per_file=4,
                                           regions_per_file=3, seed=0)
        patch = instrumentation.likwid_patch()
        result = patch.apply(codebase)
        changed = result.lines_added() + result.lines_removed()
        assert changed > patch.loc()
