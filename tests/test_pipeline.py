"""Unit tests for the PatchPipeline subsystem and its surfaces
(PatchSet, the repeatable --sp-file/--cookbook CLI, the cookbook preset)."""

import pytest

from repro import CodeBase, PatchSet, SemanticPatch
from repro.engine.pipeline import PatchPipeline, PipelinePrefilter
from repro.cli.spatch import main as spatch_main


RENAME_A = "@r@ @@\n- old_api();\n+ mid_api();\n"
RENAME_B = "@r@ @@\n- mid_api();\n+ new_api();\n"


def _patches(*texts):
    return [SemanticPatch.from_string(text, name=f"p{i}")
            for i, text in enumerate(texts)]


class TestPatchSet:
    def test_container_protocol(self):
        patches = _patches(RENAME_A, RENAME_B)
        patchset = PatchSet(patches, name="renames")
        assert len(patchset) == 2
        assert list(patchset) == patches
        assert patchset[1] is patches[1]
        assert patchset.patch_names == ["p0", "p1"]
        assert patchset.loc() == patches[0].loc() + patches[1].loc()
        assert "renames" in patchset.describe()
        assert "p1" in patchset.describe()

    def test_apply_chains_patches_in_order(self):
        codebase = CodeBase.from_files(
            {"a.c": "void f(void) { old_api(); }\n"})
        result = PatchSet(_patches(RENAME_A, RENAME_B)).apply(codebase)
        assert "new_api();" in result["a.c"].text
        assert result.total_matches == 2
        assert result.patch_names == ["p0", "p1"]

    def test_apply_accepts_plain_dict(self):
        result = PatchSet(_patches(RENAME_A)).apply(
            {"a.c": "void f(void) { old_api(); }\n"})
        assert "mid_api();" in result["a.c"].text

    def test_empty_patchset_is_identity(self):
        codebase = CodeBase.from_files({"a.c": "int x;\n"})
        result = PatchSet([]).apply(codebase)
        assert result["a.c"].text == "int x;\n"
        assert result.total_matches == 0
        assert result.diff() == ""

    def test_result_for_by_index_and_name(self):
        codebase = CodeBase.from_files(
            {"a.c": "void f(void) { old_api(); }\n"})
        result = PatchSet(_patches(RENAME_A, RENAME_B)).apply(codebase)
        assert result.result_for(0) is result.per_patch[0]
        assert result.result_for("p1") is result.per_patch[1]
        assert result.result_for("p0")["a.c"].text == \
            "void f(void) { mid_api(); }\n"
        rows = result.per_patch_summary()
        assert [row["patch"] for row in rows] == ["p0", "p1"]
        assert all(row["matches"] == 1 for row in rows)

    def test_matches_of_sums_across_patches_sharing_a_rule_name(self):
        # both patches name their rule 'r': the combined view must add the
        # reports up, not return whichever comes first
        codebase = CodeBase.from_files(
            {"a.c": "void f(void) { old_api(); }\n"})
        result = PatchSet(_patches(RENAME_A, RENAME_B)).apply(codebase)
        assert result.matches_of("r") == 2
        assert result["a.c"].matches_of("r") == 2

    def test_skipped_file_results_are_independent_objects(self):
        # sequential composition hands out one FileResult per patch even for
        # untouched files; the pipeline's skip path must do the same
        codebase = CodeBase.from_files({"miss.c": "int zero;\n",
                                        "hit.c": "void f(void) { old_api(); }\n"})
        result = PatchSet(_patches(RENAME_A, RENAME_B)).apply(codebase)
        assert result.stats.files_skipped == 1
        views = [result.result_for(0)["miss.c"], result.result_for(1)["miss.c"],
                 result["miss.c"]]
        assert len({id(view) for view in views}) == 3
        views[0].diagnostics.append("marker")
        assert not views[1].diagnostics and not views[2].diagnostics

    def test_combined_diff_is_original_to_final(self):
        codebase = CodeBase.from_files(
            {"a.c": "void f(void) { old_api(); }\n"})
        result = PatchSet(_patches(RENAME_A, RENAME_B)).apply(codebase)
        diff = result.diff()
        assert "-void f(void) { old_api(); }" in diff
        assert "+void f(void) { new_api(); }" in diff
        assert "mid_api" not in diff  # the intermediate state is not a hunk

    def test_transform_returns_codebase(self):
        codebase = CodeBase.from_files(
            {"a.c": "void f(void) { old_api(); }\n"})
        transformed = PatchSet(_patches(RENAME_A, RENAME_B)).transform(codebase)
        assert transformed["a.c"] == "void f(void) { new_api(); }\n"
        assert codebase["a.c"] == "void f(void) { old_api(); }\n"  # untouched


class TestPipelinePrefilter:
    def test_irrelevant_files_skipped_whole_pipeline(self):
        files = {"hit.c": "void f(void) { old_api(); }\n",
                 "miss_0.c": "int zero(void) { return 0; }\n",
                 "miss_1.c": "int one(void) { return 1; }\n"}
        result = PatchSet(_patches(RENAME_A, RENAME_B)).apply(
            CodeBase.from_files(files))
        assert result.stats.files_skipped == 2
        assert result.stats.sessions_run == 2  # both patches, hit.c only
        assert not result["miss_0.c"].changed
        assert "new_api();" in result["hit.c"].text
        # per-patch stats carry that patch's own coverage, not the aggregate
        for index in (0, 1):
            per_patch = result.result_for(index).stats
            assert per_patch.files_total == 3
            assert per_patch.files_skipped == 2
            assert per_patch.rules_gated == 2

    def test_token_inserted_by_earlier_patch_does_not_gate_later_patch(self):
        # mid_api only exists because patch 0 inserts it: the union plan
        # must keep the file alive for patch 1 (cross-patch addable tokens)
        files = {"a.c": "void f(void) { old_api(); }\n"}
        on = PatchSet(_patches(RENAME_A, RENAME_B)).apply(
            CodeBase.from_files(files), prefilter=True)
        off = PatchSet(_patches(RENAME_A, RENAME_B)).apply(
            CodeBase.from_files(files), prefilter=False)
        assert on["a.c"].text == off["a.c"].text == \
            "void f(void) { new_api(); }\n"

    def test_unbounded_plus_material_disables_later_skipping(self):
        wildcard = ("@a@\nidentifier f;\n@@\n- old_marker(f);\n+ f();\n")
        later = "@b@ @@\n- anything_at_all();\n"
        asts = [SemanticPatch.from_string(t).ast for t in (wildcard, later)]
        prefilter = PipelinePrefilter(asts)
        # a file with neither old_marker nor anything_at_all must still get
        # a session: patch a could (in principle) have inserted anything
        assert prefilter.needs_any_session(frozenset({"old_marker"}))
        # ...but a file that patch a cannot touch is skippable only if
        # patch b's own requirement also fails on the *original* tokens
        assert not prefilter.needs_any_session(frozenset({"unrelated"}))

    def test_bounded_plus_material_keeps_skipping_precise(self):
        asts = [SemanticPatch.from_string(t).ast
                for t in (RENAME_A, RENAME_B)]
        prefilter = PipelinePrefilter(asts)
        assert prefilter.needs_any_session(frozenset({"old_api"}))
        assert prefilter.needs_any_session(frozenset({"mid_api"}))
        assert not prefilter.needs_any_session(frozenset({"new_api"}))


class TestPipelineSemantics:
    def test_parse_shared_across_patch_boundaries(self):
        # two pure-match patches on the same file: the second session must
        # reuse the first session's tree through the shared cache
        from repro.engine.cache import TreeCache

        match_only = "@m@\nidentifier fn;\nexpression list el;\n@@\nfn(el)\n"
        asts = [SemanticPatch.from_string(match_only).ast for _ in range(2)]
        cache = TreeCache()
        pipeline = PatchPipeline(asts, tree_cache=cache)
        result = pipeline.run({"a.c": "void f(void) { g(1); }\n"})
        assert result.total_matches == 2
        assert pipeline.stats.cache_misses == 1
        assert pipeline.stats.cache_hits == 1

    def test_edit_forces_reparse_for_next_patch(self):
        from repro.engine.cache import TreeCache

        asts = [SemanticPatch.from_string(t).ast
                for t in (RENAME_A, RENAME_B)]
        cache = TreeCache()
        pipeline = PatchPipeline(asts, tree_cache=cache)
        pipeline.run({"a.c": "void f(void) { old_api(); }\n"})
        assert pipeline.stats.cache_misses == 2  # original + patched text
        assert pipeline.stats.cache_hits == 0

    def test_parallel_fallback_when_finalize_aggregates_scripts(self):
        aggregating = ("@initialize:python@ @@\nseen = []\n\n"
                       "@a@\nidentifier f;\n@@\nmarked(f);\n\n"
                       "@script:python s@\nf << a.f;\n@@\nseen.append(f)\n\n"
                       "@finalize:python@ @@\nprint('seen', len(seen))\n")
        asts = [SemanticPatch.from_string(RENAME_A).ast,
                SemanticPatch.from_string(aggregating).ast]
        pipeline = PatchPipeline(asts, jobs=4)
        result = pipeline.run({"a.c": "void t(void) { marked(x); }\n",
                               "b.c": "void u(void) { marked(y); }\n"})
        assert result.stats.jobs_used == 1

    def test_parallel_initialize_runs_once_per_patch(self, tmp_path):
        markers = [tmp_path / "init_0.log", tmp_path / "init_1.log"]
        texts = [(f"@initialize:python@ @@\n"
                  f"open({str(marker)!r}, 'a').write('ran\\n')\n\n"
                  f"{rename}")
                 for marker, rename in zip(markers, (RENAME_A, RENAME_B))]
        files = {f"f{i}.c": f"void f{i}(void) {{ old_api(); }}\n"
                 for i in range(4)}
        asts = [SemanticPatch.from_string(t).ast for t in texts]
        pipeline = PatchPipeline(asts, jobs=2, prefilter=False)
        result = pipeline.run(files)
        assert result.stats.jobs_used == 2
        assert all(result[name].text == f"void f{i}(void) {{ new_api(); }}\n"
                   for i, name in enumerate(files))
        for marker in markers:
            assert marker.read_text().count("ran") == 1

    def test_stats_describe_mentions_pipeline_shape(self):
        result = PatchSet(_patches(RENAME_A, RENAME_B)).apply(
            CodeBase.from_files({"a.c": "void f(void) { old_api(); }\n",
                                 "b.c": "int zero(void) { return 0; }\n"}))
        described = result.stats.describe()
        assert "patches: 2" in described
        assert "skipped for the whole pipeline: 1" in described

    def test_mismatched_options_length_rejected(self):
        ast = SemanticPatch.from_string(RENAME_A).ast
        with pytest.raises(ValueError):
            PatchPipeline([ast], options=[None, None])


class TestFullModernizationPreset:
    def test_preset_is_the_whole_cookbook(self):
        from repro.cookbook import builders, full_modernization_pipeline

        patchset = full_modernization_pipeline()
        assert len(patchset) == len(builders()) == 12

    def test_preset_applies_over_mixed_files(self):
        from repro.cookbook import full_modernization_pipeline
        from repro.workloads import openmp_kernels

        codebase = openmp_kernels.generate(n_files=1, kernels_per_file=2,
                                           regions_per_file=2, seed=9)
        result = full_modernization_pipeline().apply(codebase)
        assert result.total_matches > 0
        assert "LIKWID_MARKER_START" in result.diff()

    def test_preset_mdspan_arrays_override(self):
        from repro.cookbook import full_modernization_pipeline
        from repro.workloads import gadget

        codebase = gadget.generate(n_files=1, loops_per_file=2,
                                   grid_kernels_per_file=2, seed=9)
        default = full_modernization_pipeline()
        targeted = full_modernization_pipeline(
            mdspan_arrays={"rho": 3, "phi": 3})
        mdspan_index = 6  # builders() order
        assert targeted.apply(codebase).result_for(mdspan_index) \
            .total_matches > default.apply(codebase) \
            .result_for(mdspan_index).total_matches


class TestCliPipeline:
    def _write(self, tmp_path, name, text):
        target = tmp_path / name
        target.write_text(text)
        return str(target)

    def test_repeatable_sp_file_runs_as_pipeline(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.cocci", RENAME_A)
        b = self._write(tmp_path, "b.cocci", RENAME_B)
        target = self._write(tmp_path, "t.c", "void f(void) { old_api(); }\n")
        rc = spatch_main(["--sp-file", a, "--sp-file", b, target])
        out = capsys.readouterr().out
        assert rc == 0
        assert "+void f(void) { new_api(); }" in out
        assert "mid_api" not in out

    def test_sp_file_and_cookbook_combine(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.cocci", RENAME_A)
        target = self._write(
            tmp_path, "t.c",
            "#include <omp.h>\nvoid f(void) {\n#pragma omp parallel\n"
            "{\nold_api();\n}\n}\n")
        rc = spatch_main(["--sp-file", a,
                          "--cookbook", "likwid_instrumentation", target])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mid_api" in out and "LIKWID_MARKER_START" in out

    def test_cookbook_full_modernization_expands(self, tmp_path, capsys):
        target = self._write(
            tmp_path, "t.c",
            "#include <omp.h>\nvoid axpy_kernel(int n) {\n"
            "#pragma omp parallel\n{\nwork();\n}\n}\n")
        rc = spatch_main(["--cookbook", "full_modernization", "--report",
                          "--profile", target])
        captured = capsys.readouterr()
        assert rc == 0
        assert "LIKWID_MARKER_START" in captured.out
        assert "patches: 12" in captured.err

    def test_pipeline_exit_code_one_when_nothing_matches(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.cocci", RENAME_A)
        b = self._write(tmp_path, "b.cocci", RENAME_B)
        target = self._write(tmp_path, "t.c", "int untouched;\n")
        assert spatch_main(["--sp-file", a, "--sp-file", b, target]) == 1

    def test_unknown_cookbook_name_is_usage_error(self, tmp_path, capsys):
        target = self._write(tmp_path, "t.c", "int x;\n")
        with pytest.raises(SystemExit) as excinfo:
            spatch_main(["--cookbook", "nope", target])
        assert excinfo.value.code == 2

    def test_list_cookbook_includes_preset(self, capsys):
        assert spatch_main(["--list-cookbook"]) == 0
        assert "full_modernization" in capsys.readouterr().out

    def test_interleaved_flags_keep_command_line_order(self, tmp_path):
        from repro.cli.spatch import build_arg_parser

        args = build_arg_parser().parse_args(
            ["--cookbook", "likwid_instrumentation", "--sp-file", "a.cocci",
             "--cookbook", "acc_to_omp", "t.c"])
        assert args.patch_args == [("cookbook", "likwid_instrumentation"),
                                   ("sp_file", "a.cocci"),
                                   ("cookbook", "acc_to_omp")]

    def test_rerun_of_guarded_cookbook_exits_one(self, tmp_path, capsys):
        """Regression: the idempotence-guard rules fire on already-modernized
        files; their matches must not make a no-op re-run report 'matched'."""
        target = tmp_path / "t.c"
        target.write_text("#include <omp.h>\nvoid f(void) {\n"
                          "#pragma omp parallel\n{\nwork();\n}\n}\n")
        first = spatch_main(["--cookbook", "likwid_instrumentation",
                             "--in-place", str(target)])
        assert first == 0
        assert "LIKWID_MARKER_START" in target.read_text()
        before = target.read_text()
        second = spatch_main(["--cookbook", "likwid_instrumentation",
                              "--in-place", str(target)])
        assert second == 1  # nothing left to do
        assert target.read_text() == before

    def test_pure_match_analysis_patch_still_exits_zero(self, tmp_path, capsys):
        """...but a patch that is *all* pure-match rules (an analysis patch,
        no guards) must keep reporting exit 0 when it matches."""
        cocci = tmp_path / "calls.cocci"
        cocci.write_text("@calls@\nidentifier fn;\nexpression list el;\n@@\n"
                         "fn(el)\n")
        target = self._write(tmp_path, "t.c", "void f(void) { g(1); }\n")
        assert spatch_main(["--sp-file", str(cocci), target]) == 0

    def test_in_place_pipeline_rewrite(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.cocci", RENAME_A)
        b = self._write(tmp_path, "b.cocci", RENAME_B)
        target = tmp_path / "t.c"
        target.write_text("void f(void) { old_api(); }\n")
        rc = spatch_main(["--sp-file", a, "--sp-file", b, "--in-place",
                          str(target)])
        assert rc == 0
        assert target.read_text() == "void f(void) { new_api(); }\n"


class TestFromPathEncoding:
    def test_patch_files_load_with_surrogateescape(self, tmp_path):
        """Regression: from_path used errors='replace' while CodeBase uses
        surrogateescape; a stray Latin-1 byte in a patch comment must
        round-trip exactly like one in a source file."""
        cocci = tmp_path / "r.cocci"
        cocci.write_bytes("// caf\xe9 patch\n".encode("latin-1")
                          + RENAME_A.encode())
        patch = SemanticPatch.from_path(cocci)
        assert "\udce9" in patch.ast.source_text  # byte kept, not U+FFFD
        result = patch.apply_to_source("void f(void) { old_api(); }\n")
        assert "mid_api();" in result.text
