"""Tests for metavariable declaration parsing."""

import pytest

from repro.errors import MetavarError
from repro.smpl.metavars import (
    MetavarDecl, parse_metavar_declarations, parse_script_header,
)


class TestKinds:
    def test_basic_kinds(self):
        table = parse_metavar_declarations(
            "type T;\nidentifier f;\nexpression x, y;\nstatement S;\nconstant k;")
        assert table.kind_of("T") == "type"
        assert table.kind_of("f") == "identifier"
        assert table.kind_of("x") == table.kind_of("y") == "expression"
        assert table.kind_of("S") == "statement"
        assert table.kind_of("k") == "constant"

    def test_multiword_kinds(self):
        table = parse_metavar_declarations(
            "parameter list PL;\nstatement list SL;\nexpression list el;\npragmainfo pi;")
        assert table.kind_of("PL") == "parameter list"
        assert table.kind_of("SL") == "statement list"
        assert table.kind_of("el") == "expression list"
        assert table.kind_of("pi") == "pragmainfo"

    def test_kinds_for_parser(self):
        table = parse_metavar_declarations("type T;\nidentifier i, l;")
        assert table.kinds_for_parser() == {"T": "type", "i": "identifier", "l": "identifier"}

    def test_unknown_kind_raises(self):
        with pytest.raises(MetavarError):
            parse_metavar_declarations("wibble x;")

    def test_duplicate_name_raises(self):
        with pytest.raises(MetavarError):
            parse_metavar_declarations("identifier f;\ntype f;")


class TestConstraints:
    def test_regex_constraint(self):
        table = parse_metavar_declarations('identifier f =~ "kernel";')
        decl = table["f"]
        assert decl.regex == "kernel"
        assert decl.check_name_constraint("my_kernel_3")
        assert not decl.check_name_constraint("helper")

    def test_value_set_constant(self):
        table = parse_metavar_declarations("constant k={4};")
        assert table["k"].values == ("4",)
        assert table["k"].check_constant_constraint("4")
        assert not table["k"].check_constant_constraint("8")

    def test_identifier_value_set(self):
        table = parse_metavar_declarations("identifier c = {i,j};")
        assert table["c"].values == ("i", "j")
        assert table["c"].check_name_constraint("j")
        assert not table["c"].check_name_constraint("kk")

    def test_regex_with_character_class(self):
        table = parse_metavar_declarations(
            'identifier i =~ "rsb__BCSR_spmv_sasa_double_complex_[CH]__t[NTC]";')
        assert table["i"].check_name_constraint(
            "rsb__BCSR_spmv_sasa_double_complex_C__tN_r1")


class TestInheritance:
    def test_inherited_declaration(self):
        table = parse_metavar_declarations("type c.T;\nfunction c.f;\nparameter list c.PL;")
        assert table["T"].is_inherited and table["T"].source_rule == "c"
        assert table["f"].kind == "function"
        assert table["PL"].source_name == "PL"
        assert len(table.inherited()) == 3

    def test_describe(self):
        decl = MetavarDecl(kind="identifier", name="f", regex="kernel")
        assert "kernel" in decl.describe()


class TestFresh:
    def test_fresh_identifier(self):
        table = parse_metavar_declarations('fresh identifier f512 = "avx512_" ## f;')
        decl = table["f512"]
        assert decl.is_fresh
        assert [(p.kind, p.value) for p in decl.fresh_parts] == [("str", "avx512_"), ("mv", "f")]

    def test_fresh_requires_seed(self):
        with pytest.raises(MetavarError):
            parse_metavar_declarations("fresh identifier f512;")

    def test_fresh_listed_separately(self):
        table = parse_metavar_declarations(
            'identifier f;\nfresh identifier g = "pre_" ## f;')
        assert [d.name for d in table.fresh()] == ["g"]


class TestScriptHeaders:
    def test_imports_and_outputs(self):
        imports, outputs = parse_script_header("fn << cfe.fn;\nnf;\n")
        assert imports == [("fn", "cfe", "fn")]
        assert outputs == ["nf"]

    def test_multiple_imports(self):
        imports, outputs = parse_script_header("fb << r1.fb;\nn << r1.n;\nlb;\nrp;")
        assert len(imports) == 2 and outputs == ["lb", "rp"]

    def test_import_requires_rule_qualification(self):
        with pytest.raises(MetavarError):
            parse_script_header("fn << fn;")
