"""Tests for the control-flow graph builder."""

import pytest

from repro.lang import ast_nodes as A
from repro.lang.cfg import build_cfg
from repro.lang.parser import parse_source


def cfg_of(code: str, index: int = 0):
    tree = parse_source(code, "t.c")
    fns = [d for d in tree.unit.decls if isinstance(d, A.FunctionDef)]
    return build_cfg(fns[index]), tree


class TestStraightLine:
    def test_linear_chain(self):
        cfg, _ = cfg_of("void f(void) { a = 1; b = 2; c = 3; }")
        # entry -> 3 stmts -> exit
        assert len(list(cfg.statement_nodes())) == 3
        assert cfg.exit.index in cfg.reachable_from(cfg.entry.index)

    def test_empty_body(self):
        cfg, _ = cfg_of("void f(void) { }")
        assert cfg.exit.index in cfg.successors(cfg.entry.index)


class TestBranches:
    def test_if_creates_two_paths(self):
        cfg, _ = cfg_of("void f(int a) { if (a) { x = 1; } else { x = 2; } y = 3; }")
        cond = [n for n in cfg.nodes if n.kind == "cond"][0]
        assert len(cond.succs) == 2

    def test_if_without_else_falls_through(self):
        cfg, _ = cfg_of("void f(int a) { if (a) { x = 1; } y = 3; }")
        cond = [n for n in cfg.nodes if n.kind == "cond"][0]
        join = [n for n in cfg.nodes if n.label == "endif"][0]
        assert join.index in cond.succs

    def test_return_connects_to_exit(self):
        cfg, _ = cfg_of("int f(int a) { if (a) { return 1; } return 0; }")
        returns = [n for n in cfg.nodes if n.label == "return"]
        assert all(cfg.exit.index in n.succs for n in returns)


class TestLoops:
    def test_loop_back_edge(self):
        cfg, _ = cfg_of("void f(int n) { for (int i = 0; i < n; ++i) { s += i; } }")
        assert cfg.back_edges(), "a for loop must produce a back edge"

    def test_natural_loop_body(self):
        cfg, tree = cfg_of("void f(int n) { for (int i = 0; i < n; ++i) { s += i; } done = 1; }")
        loops = cfg.natural_loops()
        assert len(loops) == 1
        assert isinstance(loops[0].stmt, A.ForStmt)

    def test_nested_loops(self):
        cfg, _ = cfg_of("""
void f(int n) {
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            g(i, j);
        }
    }
}
""")
        assert len(cfg.natural_loops()) == 2

    def test_while_and_break(self):
        cfg, _ = cfg_of("void f(int n) { while (n) { if (n == 1) break; n--; } done = 1; }")
        brk = [n for n in cfg.nodes if n.label == "break"][0]
        after = [n for n in cfg.nodes if n.label == "after-loop"][0]
        assert after.index in brk.succs

    def test_continue_targets_loop_head(self):
        cfg, _ = cfg_of("void f(int n) { for (int i=0;i<n;++i) { if (i) continue; g(i); } }")
        cont = [n for n in cfg.nodes if n.label == "continue"][0]
        head = [n for n in cfg.nodes if n.kind == "loop-head"][0]
        assert head.index in cont.succs

    def test_do_while(self):
        cfg, _ = cfg_of("void f(int n) { do { n--; } while (n > 0); }")
        assert cfg.back_edges()


class TestAnalyses:
    def test_dominators_entry_dominates_all(self):
        cfg, _ = cfg_of("void f(int a) { if (a) { x = 1; } y = 2; }")
        dom = cfg.dominators()
        for node in range(len(cfg)):
            assert cfg.entry.index in dom[node]

    def test_on_every_path_between(self):
        cfg, _ = cfg_of("void f(void) { a = 1; b = 2; c = 3; }")
        stmts = list(cfg.statement_nodes())
        assert cfg.on_every_path_between(cfg.entry.index, cfg.exit.index, stmts[1].index)

    def test_not_on_every_path_with_branch(self):
        cfg, _ = cfg_of("void f(int a) { if (a) { x = 1; } y = 2; }")
        x_node = [n for n in cfg.statement_nodes() if n.label == "ExprStmt"][0]
        assert not cfg.on_every_path_between(cfg.entry.index, cfg.exit.index, x_node.index)

    def test_node_for_statement(self):
        cfg, tree = cfg_of("void f(void) { a = 1; }")
        fn = tree.unit.decls[0]
        stmt = fn.body.stmts[0]
        assert cfg.node_for_statement(stmt) is not None

    def test_networkx_export(self):
        cfg, _ = cfg_of("void f(int n) { for (int i=0;i<n;++i) { s += i; } }")
        graph = cfg.to_networkx()
        assert graph.number_of_nodes() == len(cfg)
        assert graph.number_of_edges() >= len(cfg) - 1

    def test_instrumented_region_encloses_loop(self):
        """CFG-level validation used by E1: the marker start dominates the
        loop head and the loop reaches the marker stop."""
        code = """
void f(int n) {
    LIKWID_MARKER_START(__func__);
    for (int i = 0; i < n; ++i) { s += i; }
    LIKWID_MARKER_STOP(__func__);
}
"""
        cfg, tree = cfg_of(code)
        dom = cfg.dominators()
        start = [n for n in cfg.statement_nodes()
                 if n.stmt is not None and "START" in tree.node_text(n.stmt)][0]
        head = [n for n in cfg.nodes if n.kind == "loop-head"][0]
        assert start.index in dom[head.index]
