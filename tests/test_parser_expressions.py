"""Tests for expression parsing."""

import pytest

from repro.errors import CParseError
from repro.lang import ast_nodes as A
from repro.lang.lexer import Lexer
from repro.lang.parser import CParser, parse_source
from repro.lang.source import SourceFile
from repro.options import SpatchOptions


def parse_expr(text: str, cxx: bool = False, metavars=None):
    src = SourceFile(name="<expr>", text=text)
    tokens = Lexer(src, smpl_mode=metavars is not None).tokenize()
    options = SpatchOptions(cxx=17) if cxx else SpatchOptions()
    parser = CParser(tokens, src, options=options, metavars=metavars, tolerant=False)
    return parser.parse_single_expression(), parser


class TestPrecedence:
    def test_multiplication_binds_tighter(self):
        expr, _ = parse_expr("a + b * c")
        assert isinstance(expr, A.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, A.BinaryOp) and expr.right.op == "*"

    def test_relational_vs_additive(self):
        expr, _ = parse_expr("i + k - 1 < n")
        assert expr.op == "<"
        assert isinstance(expr.left, A.BinaryOp) and expr.left.op == "-"

    def test_logical_operators(self):
        expr, _ = parse_expr("a && b || c")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_parentheses(self):
        expr, _ = parse_expr("(a + b) * c")
        assert expr.op == "*"
        assert isinstance(expr.left, A.Paren)

    def test_assignment_right_associative(self):
        expr, _ = parse_expr("a = b = c")
        assert isinstance(expr, A.Assignment)
        assert isinstance(expr.value, A.Assignment)

    def test_compound_assignment(self):
        expr, _ = parse_expr("x += y * 2")
        assert isinstance(expr, A.Assignment) and expr.op == "+="

    def test_ternary(self):
        expr, _ = parse_expr("a ? b : c")
        assert isinstance(expr, A.Ternary)


class TestPostfix:
    def test_call_with_args(self):
        expr, _ = parse_expr("f(a, b + 1, g(c))")
        assert isinstance(expr, A.Call) and len(expr.args) == 3
        assert isinstance(expr.args[2], A.Call)

    def test_nested_subscripts(self):
        expr, _ = parse_expr("a[i][j][k]")
        assert isinstance(expr, A.Subscript)
        assert isinstance(expr.base, A.Subscript)
        assert isinstance(expr.base.base, A.Subscript)

    def test_multi_index_subscript(self):
        expr, _ = parse_expr("a[i, j, k]", cxx=True)
        assert isinstance(expr, A.Subscript) and len(expr.indices) == 3

    def test_member_access(self):
        expr, _ = parse_expr("p[i].pos[0]")
        assert isinstance(expr, A.Subscript)
        assert isinstance(expr.base, A.Member)
        assert expr.base.name == "pos"

    def test_arrow_access(self):
        expr, _ = parse_expr("node->next->value")
        assert isinstance(expr, A.Member) and expr.op == "->"

    def test_postfix_increment(self):
        expr, _ = parse_expr("i++")
        assert isinstance(expr, A.UnaryOp) and not expr.prefix

    def test_kernel_launch(self):
        expr, _ = parse_expr("saxpy<<<grid, block, 0, s>>>(a, b, n)")
        assert isinstance(expr, A.KernelLaunch)
        assert len(expr.config) == 4 and len(expr.args) == 3

    def test_qualified_identifier(self):
        expr, _ = parse_expr("std::find(a, b, k)", cxx=True)
        assert isinstance(expr, A.Call)
        assert expr.func.name == "std::find"


class TestUnaryAndCasts:
    def test_prefix_operators(self):
        expr, _ = parse_expr("-x")
        assert isinstance(expr, A.UnaryOp) and expr.op == "-" and expr.prefix

    def test_address_and_deref(self):
        expr, _ = parse_expr("*&x")
        assert expr.op == "*" and expr.operand.op == "&"

    def test_cast(self):
        expr, _ = parse_expr("(double)n")
        assert isinstance(expr, A.Cast) and expr.type.text == "double"

    def test_cast_with_pointer(self):
        expr, _ = parse_expr("(struct particle *)buf")
        assert isinstance(expr, A.Cast)

    def test_sizeof_type(self):
        expr, _ = parse_expr("sizeof(double)")
        assert isinstance(expr, A.SizeofExpr) and isinstance(expr.arg, A.TypeName)

    def test_sizeof_expression(self):
        expr, _ = parse_expr("sizeof x")
        assert isinstance(expr, A.SizeofExpr) and isinstance(expr.arg, A.Ident)

    def test_parenthesised_arithmetic_not_a_cast(self):
        expr, _ = parse_expr("(a) + b")
        assert isinstance(expr, A.BinaryOp)


class TestLiterals:
    @pytest.mark.parametrize("text,category", [
        ("42", "int"), ("3.5", "float"), ("1e-7", "float"), ('"hi"', "string"),
        ("'c'", "char"), ("true", "bool"), ("NULL", "null"),
    ])
    def test_literal_categories(self, text, category):
        expr, _ = parse_expr(text)
        assert isinstance(expr, A.Literal) and expr.category == category


class TestExtents:
    def test_node_text_round_trip(self):
        tree = parse_source("int f(void) { return a[i] + g(b, c); }", "t.c")
        subs = [n for n in A.walk(tree.unit) if isinstance(n, A.Subscript)]
        assert tree.node_text(subs[0]) == "a[i]"
        calls = [n for n in A.walk(tree.unit) if isinstance(n, A.Call)]
        assert tree.node_text(calls[0]) == "g(b, c)"

    def test_trailing_tokens_rejected(self):
        with pytest.raises(CParseError):
            parse_expr("a + b extra")


class TestPatternModeExpressions:
    def test_dots_in_argument_list(self):
        expr, _ = parse_expr("f(...)", metavars={"f": "identifier"})
        assert isinstance(expr.args[0], A.DotsExpr)

    def test_expression_list_metavar(self):
        expr, _ = parse_expr("fn(el)", metavars={"fn": "identifier",
                                                 "el": "expression list"})
        assert isinstance(expr.args[0], A.MetaExprList)

    def test_position_annotation(self):
        expr, _ = parse_expr("fn@p(el)", metavars={"fn": "identifier", "p": "position",
                                                   "el": "expression list"})
        assert isinstance(expr, A.Call)
        assert expr.func.pos_metavars == ("p",)

    def test_inline_disjunction(self):
        expr, _ = parse_expr(r"\( a == k \| k == a \)",
                             metavars={"k": "constant", "a": "identifier"})
        assert isinstance(expr, A.Disjunction) and len(expr.branches) == 2
