"""TreeCache: concurrent in-flight deduplication and persistence.

The dedup contract: when N threads race ``get_or_parse`` on the same
``(name, sha1, options)`` key, exactly one of them parses; the others wait
for its tree.  The counters stay *exact* — one miss per unique parse, one
hit per caller answered without parsing — which the pipeline's ``--profile``
output and the incremental benchmarks rely on.
"""

import pickle
import threading

import pytest

from repro.engine.cache import TreeCache, content_sha1
from repro.options import DEFAULT_OPTIONS, SpatchOptions


def _install_counting_parser(monkeypatch, delay: float = 0.0):
    """Replace the cache's parser with a call-counting (optionally slow)
    wrapper, so a duplicated parse is observable and races overlap."""
    import time

    from repro.engine import cache as cache_module
    from repro.lang.parser import parse_source

    calls: list[tuple[str, str]] = []
    lock = threading.Lock()

    def counting_parse(text, name="<input>", options=None, tolerant=False):
        with lock:
            calls.append((name, text))
        if delay:
            time.sleep(delay)
        return parse_source(text, name=name, options=options,
                            tolerant=tolerant)

    monkeypatch.setattr(cache_module, "parse_source", counting_parse)
    return calls


class TestInFlightDeduplication:
    def test_racing_threads_parse_once(self, monkeypatch):
        """16 threads, one key: one parse, one miss, 15 hits."""
        calls = _install_counting_parser(monkeypatch, delay=0.05)
        cache = TreeCache()
        n_threads = 16
        barrier = threading.Barrier(n_threads)
        trees = [None] * n_threads
        errors = []

        def worker(slot):
            try:
                barrier.wait()
                trees[slot] = cache.get_or_parse("int racy;\n", "racy.c",
                                                 DEFAULT_OPTIONS)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert len(calls) == 1  # exactly one parse hit the parser
        assert cache.stats() == (n_threads - 1, 1)
        assert all(tree is trees[0] for tree in trees)  # same shared tree

    def test_stress_many_keys_counters_exact(self, monkeypatch):
        """8 threads × 6 distinct texts, every thread parses every text:
        misses == unique texts, hits == the rest, no duplicate parses."""
        calls = _install_counting_parser(monkeypatch, delay=0.005)
        cache = TreeCache()
        texts = [f"int stress_{i};\n" for i in range(6)]
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(offset):
            try:
                barrier.wait()
                # staggered orders so different keys race at different times
                for i in range(len(texts)):
                    text = texts[(i + offset) % len(texts)]
                    cache.get_or_parse(text, "stress.c", DEFAULT_OPTIONS)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert len(calls) == len(texts)
        hits, misses = cache.stats()
        assert misses == len(texts)
        assert hits == n_threads * len(texts) - len(texts)
        assert len(cache) == len(texts)

    def test_different_keys_do_not_block_each_other(self, monkeypatch):
        """The lock is only held for bookkeeping: two different keys parse
        concurrently (both parses overlap inside the slow parser)."""
        import time

        from repro.engine import cache as cache_module
        from repro.lang.parser import parse_source

        active = []
        overlaps = []
        lock = threading.Lock()

        def overlapping_parse(text, name="<input>", options=None,
                              tolerant=False):
            with lock:
                active.append(text)
                if len(active) > 1:
                    overlaps.append(tuple(active))
            time.sleep(0.05)
            with lock:
                active.remove(text)
            return parse_source(text, name=name, options=options,
                                tolerant=tolerant)

        monkeypatch.setattr(cache_module, "parse_source", overlapping_parse)
        cache = TreeCache()
        barrier = threading.Barrier(2)

        def worker(text):
            barrier.wait()
            cache.get_or_parse(text, "free.c", DEFAULT_OPTIONS)

        threads = [threading.Thread(target=worker, args=(f"int free_{i};\n",))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert overlaps  # both keys were inside the parser at once

    def test_parse_error_releases_waiters(self, monkeypatch):
        """A failing parse must propagate to every racing caller and leave
        no stuck in-flight marker behind."""
        from repro.engine import cache as cache_module

        boom = RuntimeError("front end exploded")

        def failing_parse(text, name="<input>", options=None, tolerant=False):
            import time
            time.sleep(0.02)
            raise boom

        monkeypatch.setattr(cache_module, "parse_source", failing_parse)
        cache = TreeCache()
        barrier = threading.Barrier(4)
        outcomes = []
        lock = threading.Lock()

        def worker():
            barrier.wait()
            try:
                cache.get_or_parse("int broken;\n", "broken.c",
                                   DEFAULT_OPTIONS)
            except RuntimeError as exc:
                with lock:
                    outcomes.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(outcomes) == 4
        assert all(exc is boom for exc in outcomes)
        assert not cache._inflight  # no zombie marker
        # the key is retryable afterwards
        monkeypatch.undo()
        tree = cache.get_or_parse("int broken;\n", "broken.c", DEFAULT_OPTIONS)
        assert tree is not None


class TestPersistence:
    def test_save_load_round_trip_skips_parsing(self, tmp_path, monkeypatch):
        cache = TreeCache()
        cache.get_or_parse("int persisted;\n", "p.c", DEFAULT_OPTIONS)
        cache.get_or_parse("int other;\n", "q.c", DEFAULT_OPTIONS)
        target = tmp_path / "trees.cache"
        assert cache.save(target) == 2

        calls = _install_counting_parser(monkeypatch)
        fresh = TreeCache()
        assert fresh.load(target) == 2
        tree = fresh.get_or_parse("int persisted;\n", "p.c", DEFAULT_OPTIONS)
        assert tree.source.text == "int persisted;\n"
        assert calls == []  # answered from the persisted entry
        assert fresh.stats() == (1, 0)

    def test_load_missing_or_corrupt_is_a_no_op(self, tmp_path):
        cache = TreeCache()
        assert cache.load(tmp_path / "nope.cache") == 0
        garbage = tmp_path / "garbage.cache"
        garbage.write_bytes(b"not a pickle at all")
        assert cache.load(garbage) == 0
        versioned = tmp_path / "versioned.cache"
        versioned.write_bytes(pickle.dumps({"version": 999, "entries": []}))
        assert cache.load(versioned) == 0
        assert len(cache) == 0

    def test_restore_respects_the_lru_bound(self):
        source = TreeCache()
        for i in range(6):
            source.get_or_parse(f"int bound_{i};\n", "b.c", DEFAULT_OPTIONS)
        bounded = TreeCache(max_entries=3)
        assert bounded.restore(source.snapshot()) == 6
        assert len(bounded) == 3

    def test_keys_distinguish_options(self, tmp_path):
        """Persisted entries only answer the exact (name, hash, options)
        triple they were parsed under."""
        cache = TreeCache()
        cache.get_or_parse("int opt;\n", "o.c", DEFAULT_OPTIONS)
        target = tmp_path / "trees.cache"
        cache.save(target)
        fresh = TreeCache()
        fresh.load(target)
        fresh.get_or_parse("int opt;\n", "o.c", SpatchOptions(cxx=17))
        assert fresh.stats() == (0, 1)  # different options: a real parse


class TestContentSha1:
    def test_stable_and_distinct(self):
        assert content_sha1("int x;\n") == content_sha1("int x;\n")
        assert content_sha1("int x;\n") != content_sha1("int y;\n")

    def test_surrogateescape_bytes_hashable(self):
        # a Latin-1 byte read with surrogateescape must hash, not crash
        text = b"// caf\xe9\nint x;\n".decode("utf-8", "surrogateescape")
        assert content_sha1(text)


class TestCounters:
    """The user-visible counter surface added for --profile / server stats."""

    def test_dedup_waits_counted(self, monkeypatch):
        _install_counting_parser(monkeypatch, delay=0.05)
        cache = TreeCache()
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            cache.get_or_parse("int c;\n", "c.c", DEFAULT_OPTIONS)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        counters = cache.counters()
        assert counters["misses"] == 1
        assert counters["hits"] == 3
        # every hit was answered by waiting on the in-flight parse
        assert counters["dedup_waits"] == 3
        # a later plain hit does not count as a dedup wait
        cache.get_or_parse("int c;\n", "c.c", DEFAULT_OPTIONS)
        assert cache.counters()["dedup_waits"] == 3
        assert cache.counters()["hits"] == 4

    def test_evictions_counted_and_reset(self):
        cache = TreeCache(max_entries=2)
        for index in range(4):
            cache.get_or_parse(f"int e{index};\n", f"e{index}.c",
                               DEFAULT_OPTIONS)
        counters = cache.counters()
        assert counters["evictions"] == 2
        assert counters["entries"] == 2 and counters["max_entries"] == 2
        cache.clear()
        fresh = cache.counters()
        assert fresh["evictions"] == fresh["dedup_waits"] == 0
        assert fresh["hits"] == fresh["misses"] == 0


class TestTokenIndexCounters:
    def test_scan_reuse_counted(self):
        from repro.engine.prefilter import TokenIndex

        index = TokenIndex({"a.c": "int alpha;\n"})
        index.tokens_of("a.c")
        index.tokens_of("a.c")
        counters = index.counters()
        assert counters["scan_misses"] == 1
        assert counters["scan_hits"] == 1
        # new content for the same name forces a fresh scan
        index.add("a.c", "int beta;\n")
        assert "beta" in index.tokens_of("a.c")
        assert index.counters()["scan_misses"] == 2


class TestRecencyExactness:
    """The LRU order the cache reports (and persists) is true recency."""

    def test_dedup_wait_hit_refreshes_recency(self, monkeypatch):
        """A hit answered by waiting on an in-flight parse is still a use:
        the key must move to the hot end, exactly like a plain hit."""
        import time

        calls = _install_counting_parser(monkeypatch, delay=0.05)
        cache = TreeCache(max_entries=2)
        cache.get_or_parse("int a;\n", "a.c", DEFAULT_OPTIONS)

        started = threading.Event()

        def slow_parse_b():
            cache.get_or_parse("int b;\n", "b.c", DEFAULT_OPTIONS)

        def waiting_hit_b():
            started.wait()
            time.sleep(0.01)  # land inside b's in-flight window
            cache.get_or_parse("int b;\n", "b.c", DEFAULT_OPTIONS)
            # now touch a so the snapshot order is decided by recency
            cache.get_or_parse("int a;\n", "a.c", DEFAULT_OPTIONS)

        threads = [threading.Thread(target=slow_parse_b),
                   threading.Thread(target=waiting_hit_b)]
        threads[1].start()
        started.set()
        threads[0].start()
        for thread in threads:
            thread.join()
        assert len(calls) == 2
        # snapshot is coldest-first: b (dedup-wait hit), then a (last touch)
        names = [key[0] for key, _ in cache.snapshot()]
        assert names == ["b.c", "a.c"]

    def test_restore_does_not_steal_recency_from_live_entries(self):
        """Restoring a stale snapshot must not re-order keys the cache has
        used since the snapshot was taken."""
        cache = TreeCache()
        cache.get_or_parse("int a;\n", "a.c", DEFAULT_OPTIONS)
        cache.get_or_parse("int b;\n", "b.c", DEFAULT_OPTIONS)
        stale = cache.snapshot()  # order: a, b

        cache.get_or_parse("int a;\n", "a.c", DEFAULT_OPTIONS)  # a is hottest
        merged = cache.restore(stale)
        assert merged == 0  # every key was already live
        names = [key[0] for key, _ in cache.snapshot()]
        assert names == ["b.c", "a.c"]  # a kept its post-snapshot recency

    def test_restore_merges_only_unknown_keys(self):
        donor = TreeCache()
        donor.get_or_parse("int a;\n", "a.c", DEFAULT_OPTIONS)
        donor.get_or_parse("int b;\n", "b.c", DEFAULT_OPTIONS)

        cache = TreeCache()
        cache.get_or_parse("int a;\n", "a.c", DEFAULT_OPTIONS)
        merged = cache.restore(donor.snapshot())
        assert merged == 1  # only b was new
        assert len(cache) == 2


class TestMemoCounterExactness:
    """--profile / server-stats counter audit: when the transform memo
    short-circuits a session, the layers it bypassed record *nothing* — a
    memo hit must not double-count as parse-cache traffic."""

    RENAME = "@r@ @@\n- old_api();\n+ mid_api();\n"
    FILES = {"hit.c": "void f(void) { old_api(); }\n",
             "miss.c": "int zero(void) { return 0; }\n"}

    def _run(self, cache, memo):
        from repro import SemanticPatch
        from repro.engine.pipeline import PatchPipeline

        ast = SemanticPatch.from_string(self.RENAME, name="p0").ast
        pipeline = PatchPipeline([ast], tree_cache=cache, memo=memo)
        return pipeline.run(dict(self.FILES))

    def test_memo_hit_records_no_tree_cache_traffic(self):
        from repro.engine.memo import TransformMemo

        cache = TreeCache()
        memo = TransformMemo()
        cold = self._run(cache, memo)
        cold_traffic = cache.stats()
        assert cold.stats.memo_misses == 1  # hit.c ran; miss.c was gated

        warm = self._run(cache, memo)
        assert warm.stats.memo_hits == 1 and warm.stats.memo_misses == 0
        # the short-circuited session never consulted the parse cache: its
        # counters are byte-for-byte what the cold run left behind
        assert cache.stats() == cold_traffic
        assert warm.stats.cache_hits == 0
        assert warm.stats.cache_misses == 0
        # and coverage counters still match the cold run (logical session)
        assert warm.stats.sessions_run == cold.stats.sessions_run

    def test_memo_counters_and_cache_counters_partition_the_work(self):
        """Over any run: sessions_run == memo hits + real sessions; the
        parse traffic belongs only to the real sessions."""
        from repro.engine.memo import TransformMemo

        cache = TreeCache()
        memo = TransformMemo()
        first = self._run(cache, memo)
        assert first.stats.sessions_run == \
            first.stats.memo_hits + first.stats.memo_misses
        second = self._run(cache, memo)
        assert second.stats.sessions_run == second.stats.memo_hits
        counters = memo.counters()
        assert counters["hits"] == 1 and counters["misses"] == 1
        assert counters["stores"] == 1


class TestForkPoolCounterExactness:
    """``jobs=4`` fork pools: each worker's parse-cache delta travels home
    through the telemetry channel and the merged counters stay *exact* —
    one miss per file parsed in a worker, zero phantom hits — so
    ``--profile`` over a fork pool is as trustworthy as a serial run."""

    RENAME = "@r@ @@\n- old_api();\n+ new_api();\n"

    @staticmethod
    def _files(count: int = 6) -> dict:
        return {f"fork_{index}.c":
                f"void fn{index}(void) {{ old_api(); }}\n"
                for index in range(count)}

    def _run(self, jobs: int):
        from repro import SemanticPatch
        from repro.engine.driver import Driver

        patch = SemanticPatch.from_string(self.RENAME)
        driver = Driver(patch.ast, options=patch.options, jobs=jobs,
                        prefilter=False)
        return driver.run(self._files())

    def test_worker_deltas_are_exact(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        from repro.engine import driver as driver_mod

        hits0 = driver_mod._M_WORKER_HITS.value
        misses0 = driver_mod._M_WORKER_MISSES.value
        files = self._files()
        result = self._run(jobs=4)
        assert result.stats.jobs_used == 4
        # the merged counters are labelled as worker-scoped, and they are
        # exact: each worker parsed each of its files exactly once, cold
        assert result.stats.cache_scope == "workers"
        assert result.stats.cache_misses == len(files)
        assert result.stats.cache_hits == 0
        # and the registry's origin="workers" children moved by the same
        # amounts (the deltas are per-job before/after captures, so a
        # parallel-running test cannot inflate them)
        assert driver_mod._M_WORKER_MISSES.value - misses0 == len(files)
        assert driver_mod._M_WORKER_HITS.value - hits0 == 0
        # the transform happened in every file despite the scatter
        for name in files:
            assert result[name].changed

    def test_scope_is_unavailable_when_telemetry_is_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        result = self._run(jobs=4)
        assert result.stats.jobs_used == 4
        # no telemetry channel: the driver refuses to guess and says so
        assert result.stats.cache_scope == "unavailable"
        assert result.stats.cache_hits == 0
        assert result.stats.cache_misses == 0

    def test_serial_run_stays_locally_scoped(self):
        result = self._run(jobs=1)
        assert result.stats.cache_scope == "local"
        assert result.stats.cache_misses == len(self._files())


class TestFleetCounterExactness:
    """``--workers 4`` fleet: worker-process counters surface through the
    ``stats`` verb both per worker (with pid) and as a key-wise aggregate,
    and they partition exactly — every parse happened in precisely one
    worker's mirror."""

    FILES = {"hit.c": "void f(void) { old_api(); }\n",
             "also.c": "void g(void) { old_api(); }\n"}
    SPEC = {"kind": "smpl", "text": "@r@ @@\n- old_api();\n+ new_api();\n"}

    @pytest.fixture()
    def service(self, tmp_path):
        from repro.server.service import PatchService

        service = PatchService(workers=4,
                               state_root=str(tmp_path / "state"))
        yield service
        service.close()

    def test_aggregate_is_the_key_wise_sum_of_workers(self, service):
        service.open_workspace("w")
        service.sync_files("w", files=dict(self.FILES))
        service.apply("w", [self.SPEC])
        fleet = service.stats()["fleet"]
        per_worker = fleet["per_worker"]
        assert len(per_worker) == 4
        assert all(row["pid"] > 0 for row in per_worker)
        aggregate = fleet["aggregate"]
        # the workspace lives in exactly one worker's mirror
        assert aggregate["workspaces"] == 1
        for field in ("hits", "misses"):
            summed = sum(counters.get(field, 0)
                         for row in per_worker
                         for counters in row["parse_caches"].values())
            assert aggregate["parse_cache"][field] == summed
        # a cold apply parsed every file exactly once, in one worker
        assert aggregate["parse_cache"]["misses"] == len(self.FILES)
        memo_summed = sum(row["memo"].get("misses", 0) for row in per_worker)
        assert aggregate["memo"]["misses"] == memo_summed

    def test_warm_reapply_moves_hits_not_misses(self, service):
        service.open_workspace("w")
        service.sync_files("w", files=dict(self.FILES))
        service.apply("w", [self.SPEC])
        cold = service.stats()["fleet"]["aggregate"]
        payload = service.apply("w", [self.SPEC], profile=True)
        warm = service.stats()["fleet"]["aggregate"]
        # the replay was answered from warm state: not one new parse miss
        assert warm["parse_cache"]["misses"] == cold["parse_cache"]["misses"]
        assert warm["memo"]["misses"] == cold["memo"]["misses"]
        # and the profile names the worker that served it
        worker = payload["profile"]["fleet_worker"]
        assert worker["pid"] in {row["pid"] for row in
                                 service.stats()["fleet"]["per_worker"]}
