"""Incremental re-application: differential equivalence and its surfaces.

The contract under test: ``PatchSet.apply(codebase, since=prior_result)``
is **byte-identical** to a cold ``PatchSet.apply(codebase)`` — same texts,
same per-rule reports (combined and per patch), same coverage stats modulo
timing — across change/add/delete deltas, prefilter on/off and jobs 1/4,
while actually re-running only the files whose content hash changed.

Also covered here: the satellite fixes this mode depends on —
``CodeBase.__delitem__``/``refresh_from_dir`` token-index maintenance,
``run_fork_pool`` degenerate inputs, ``PipelineResult.result_for``'s
``KeyError`` — plus the persisted-state round-trip and the CLI's
``--incremental``/``--watch``.
"""

import threading
import time

import pytest

from repro import CodeBase, PatchSet, SemanticPatch
from repro.cli.spatch import main as spatch_main
from repro.engine.cache import content_sha1
from repro.engine.incremental import (IncrementalPipeline, IncrementalStats,
                                      PipelineState)

from test_prefilter import _cookbook_patch
from test_pipeline_differential import _mini


RENAME_A = "@r@ @@\n- old_api();\n+ mid_api();\n"
RENAME_B = "@r@ @@\n- mid_api();\n+ new_api();\n"


def _patches(*texts):
    return [SemanticPatch.from_string(text, name=f"p{i}")
            for i, text in enumerate(texts)]


def assert_results_identical(incremental, cold, context=""):
    """Byte-identity of two pipeline results: texts, reports, diagnostics
    per patch and combined, plus the coverage counters (timing excluded)."""
    assert list(incremental.files) == list(cold.files), context
    for name in cold.files:
        assert incremental[name].text == cold[name].text, (context, name)
        assert incremental[name].original_text == \
            cold[name].original_text, (context, name)
        assert incremental[name].rule_reports == \
            cold[name].rule_reports, (context, name)
        assert incremental[name].diagnostics == \
            cold[name].diagnostics, (context, name)
    assert incremental.patch_names == cold.patch_names
    assert len(incremental.per_patch) == len(cold.per_patch)
    for index, (inc_patch, cold_patch) in enumerate(
            zip(incremental.per_patch, cold.per_patch)):
        assert list(inc_patch.files) == list(cold_patch.files), (context, index)
        for name in cold_patch.files:
            assert inc_patch[name].text == cold_patch[name].text, \
                (context, index, name)
            assert inc_patch[name].rule_reports == \
                cold_patch[name].rule_reports, (context, index, name)
        inc_stats, cold_stats = inc_patch.stats, cold_patch.stats
        for field in ("files_total", "files_skipped", "rules_gated",
                      "prefilter"):
            assert getattr(inc_stats, field) == getattr(cold_stats, field), \
                (context, index, field)
    for field in ("patches", "files_total", "files_skipped", "sessions_run",
                  "sessions_gated", "rules_gated", "prefilter"):
        assert getattr(incremental.stats, field) == \
            getattr(cold.stats, field), (context, field)
    assert incremental.total_matches == cold.total_matches
    assert incremental.records == cold.records
    assert incremental.fingerprint == cold.fingerprint


# ---------------------------------------------------------------------------
# differential: change / add / delete x prefilter x jobs, over the cookbook
# ---------------------------------------------------------------------------

#: patch names and workload parts: a GPU-translation pair (one unfilterable
#: patch, one selective) over a mixed tree — both prefilter regimes matter
COOKBOOK_NAMES = ("cuda_to_hip", "acc_to_omp")
WORKLOAD_PARTS = ("cuda", "acc", "raw")


def _mutated(codebase: CodeBase, scenario: str) -> CodeBase:
    files = dict(codebase.files)
    names = sorted(files)
    if scenario == "change":
        # a real edit with new matches: an OpenACC loop the patch rewrites
        files[names[0]] += ("\nvoid probe_added(float *x, int n) {\n"
                            "#pragma acc parallel loop\n"
                            "for (int i = 0; i < n; i++) x[i] += 1.0f;\n"
                            "}\n")
    elif scenario == "add":
        files["added/probe.c"] = ("void probe_new(float *x, int n) {\n"
                                  "#pragma acc parallel loop\n"
                                  "for (int i = 0; i < n; i++) x[i] *= 2.0f;\n"
                                  "}\n")
    elif scenario == "delete":
        del files[names[0]]
    elif scenario == "mixed":
        files[names[0]] += "\n/* trailing note */\n"
        files["added/probe.c"] = "int probe;\n"
        del files[names[1]]
    else:  # pragma: no cover - scenario typo guard
        raise AssertionError(scenario)
    return CodeBase.from_files(files)


CONFIGS = [(True, 1), (False, 1), (True, 4), (False, 4)]


@pytest.mark.parametrize("prefilter,jobs", CONFIGS,
                         ids=[f"prefilter_{'on' if p else 'off'}-jobs{j}"
                              for p, j in CONFIGS])
@pytest.mark.parametrize("scenario", ["change", "add", "delete", "mixed"])
def test_incremental_identical_to_cold_run(scenario, prefilter, jobs):
    patches = [_cookbook_patch(name) for name in COOKBOOK_NAMES]
    patchset = PatchSet(patches)
    base = _mini(*WORKLOAD_PARTS)
    prior = patchset.apply(base, jobs=jobs, prefilter=prefilter)
    assert prior.total_matches > 0

    mutated = _mutated(base, scenario)
    cold = patchset.apply(CodeBase.from_files(dict(mutated.files)),
                          jobs=jobs, prefilter=prefilter)
    incremental = patchset.apply(mutated, jobs=jobs, prefilter=prefilter,
                                 since=prior)

    stats = incremental.incremental
    assert stats is not None and stats.fallback is None
    expected_rerun = {"change": 1, "add": 1, "delete": 0, "mixed": 2}[scenario]
    expected_dropped = {"change": 0, "add": 0, "delete": 1, "mixed": 1}[scenario]
    assert stats.files_rerun == expected_rerun, (scenario, stats)
    assert stats.files_dropped == expected_dropped
    assert stats.files_reused == len(mutated) - expected_rerun
    assert_results_identical(incremental, cold, (scenario, prefilter, jobs))


def test_incremental_chain_edit_apply_edit_apply():
    """Each incremental result seeds the next: a three-step edit loop stays
    identical to cold runs throughout."""
    patches = [_cookbook_patch(name) for name in COOKBOOK_NAMES]
    patchset = PatchSet(patches)
    codebase = _mini(*WORKLOAD_PARTS)
    result = patchset.apply(codebase)
    for step, scenario in enumerate(["change", "add", "delete"]):
        codebase = _mutated(codebase, scenario)
        cold = patchset.apply(CodeBase.from_files(dict(codebase.files)))
        result = patchset.apply(codebase, since=result)
        assert result.incremental.fallback is None
        assert_results_identical(result, cold, ("chain", step, scenario))


def test_identity_rerun_reuses_everything():
    patchset = PatchSet(_patches(RENAME_A, RENAME_B))
    codebase = CodeBase.from_files(
        {"a.c": "void f(void) { old_api(); }\n", "b.c": "int zero;\n"})
    prior = patchset.apply(codebase)
    again = patchset.apply(codebase, since=prior)
    assert again.incremental.files_reused == 2
    assert again.incremental.files_rerun == 0
    assert_results_identical(again, prior, "identity")


def test_spliced_results_are_independent_objects():
    """Mutating a view spliced from the prior result must not leak back
    into it (or into sibling views) — mirrors the cold pipeline's skip-path
    guarantee."""
    patchset = PatchSet(_patches(RENAME_A, RENAME_B))
    codebase = CodeBase.from_files(
        {"a.c": "void f(void) { old_api(); }\n", "b.c": "int zero;\n"})
    prior = patchset.apply(codebase)
    again = patchset.apply(codebase, since=prior)
    views = [again["a.c"], again.result_for(0)["a.c"], prior["a.c"]]
    assert len({id(view) for view in views}) == 3
    views[0].diagnostics.append("marker")
    views[0].rule_reports[0].matches = 999
    assert prior["a.c"].diagnostics == []
    assert prior["a.c"].rule_reports[0].matches == 1
    assert again.result_for(0)["a.c"].rule_reports[0].matches == 1


class TestFallbacks:
    def _prior(self):
        patchset = PatchSet(_patches(RENAME_A, RENAME_B))
        codebase = CodeBase.from_files({"a.c": "void f(void) { old_api(); }\n"})
        return patchset, codebase, patchset.apply(codebase)

    def test_none_since_runs_cold_without_stats_fallback_field(self):
        patchset, codebase, _prior = self._prior()
        result = patchset.apply(codebase, since=None)
        assert result.incremental is None  # plain cold run, no wrapper

    def test_shared_prefix_no_longer_falls_back(self):
        """Dropping the tail of the patch list keeps the shared prefix
        reusable: the truncated set splices the cached prefix results
        instead of degrading to a cold run (PR 3 behaviour)."""
        _patchset, codebase, prior = self._prior()
        other = PatchSet(_patches(RENAME_A))  # prefix of the prior list
        result = other.apply(codebase, since=prior)
        assert result.incremental.fallback is None
        assert result.incremental.patches_reused == 1
        assert result["a.c"].text == "void f(void) { mid_api(); }\n"

    def test_diverged_first_patch_falls_back(self):
        _patchset, codebase, prior = self._prior()
        other = PatchSet(_patches(RENAME_B, RENAME_A))  # reordered prefix
        result = other.apply(codebase, since=prior)
        assert "no shared patch prefix" in result.incremental.fallback
        # RENAME_B then RENAME_A: old_api -> mid_api (B first finds nothing)
        assert result["a.c"].text == "void f(void) { mid_api(); }\n"

    def test_recordless_prior_falls_back(self):
        patchset, codebase, prior = self._prior()
        prior.records.clear()  # e.g. a result from a pre-records pickle
        result = patchset.apply(codebase, since=prior)
        assert "records" in result.incremental.fallback
        assert result.total_matches == 2

    def test_prefilter_toggle_falls_back(self):
        """Texts and reports are prefilter-independent, but the spliced
        coverage counters are not: a prior prefilter-on result must not
        seed a prefilter-off run (and vice versa)."""
        patchset, codebase, prior = self._prior()  # prefilter on
        result = patchset.apply(codebase, prefilter=False, since=prior)
        assert "prefilter" in result.incremental.fallback
        assert result.stats.files_skipped == 0  # honest no-prefilter stats
        back_on = patchset.apply(codebase, prefilter=True, since=result)
        assert "prefilter" in back_on.incremental.fallback

    def test_script_finalize_aggregation_falls_back(self):
        aggregating = ("@initialize:python@ @@\nseen = []\n\n"
                       "@a@\nidentifier f;\n@@\nmarked(f);\n\n"
                       "@script:python s@\nf << a.f;\n@@\nseen.append(f)\n\n"
                       "@finalize:python@ @@\nprint('seen', len(seen))\n")
        patchset = PatchSet([SemanticPatch.from_string(aggregating, name="agg")])
        codebase = CodeBase.from_files({"a.c": "void t(void) { marked(x); }\n",
                                        "b.c": "void u(void) { marked(y); }\n"})
        prior = patchset.apply(codebase)
        result = patchset.apply(codebase, since=prior)
        assert "finalize" in result.incremental.fallback

    def test_fallback_result_still_seeds_the_next_incremental_run(self):
        patchset, codebase, prior = self._prior()
        prior.records.clear()
        fallback = patchset.apply(codebase, since=prior)  # cold, but recorded
        assert fallback.records
        follow_up = patchset.apply(codebase, since=fallback)
        assert follow_up.incremental.fallback is None
        assert follow_up.incremental.files_reused == 1


# ---------------------------------------------------------------------------
# patch-set deltas: prefix splicing + suffix replay
# ---------------------------------------------------------------------------

#: appended third patch for the prefix differentials (matches the raw part)
APPEND_NAME = "raw_loop_to_find"


class TestPatchPrefixReuse:
    def _prior(self, prefilter=True, jobs=1):
        patches = [_cookbook_patch(name) for name in COOKBOOK_NAMES]
        codebase = _mini(*WORKLOAD_PARTS)
        prior = PatchSet(patches).apply(codebase, jobs=jobs,
                                        prefilter=prefilter)
        assert prior.total_matches > 0
        return patches, codebase, prior

    @pytest.mark.parametrize("prefilter,jobs", CONFIGS,
                             ids=[f"prefilter_{'on' if p else 'off'}-jobs{j}"
                                  for p, j in CONFIGS])
    def test_appended_patch_runs_suffix_only(self, prefilter, jobs):
        """The headline workflow: appending one patch to a warm patch set
        splices every unchanged file's prefix results and replays only the
        new patch — byte-identical to a cold run of the full list."""
        patches, codebase, prior = self._prior(prefilter, jobs)
        extended = PatchSet(patches + [_cookbook_patch(APPEND_NAME)])
        cold = extended.apply(CodeBase.from_files(dict(codebase.files)),
                              jobs=jobs, prefilter=prefilter)
        incremental = extended.apply(codebase, jobs=jobs, prefilter=prefilter,
                                     since=prior)
        stats = incremental.incremental
        assert stats.fallback is None
        assert stats.patches_reused == len(patches)
        assert stats.patches_total == len(patches) + 1
        assert stats.files_reused == len(codebase)
        assert stats.files_rerun == 0
        assert cold.per_patch[-1].total_matches > 0  # the suffix patch bites
        assert_results_identical(incremental, cold,
                                 ("append", prefilter, jobs))

    def test_modified_tail_patch_replays_from_divergence(self):
        patchset = PatchSet(_patches(RENAME_A, RENAME_B))
        files = {"a.c": "void f(void) { old_api(); }\n", "b.c": "int z;\n"}
        prior = patchset.apply(files)
        modified = PatchSet(_patches(
            RENAME_A, "@r@ @@\n- mid_api();\n+ other_api();\n"))
        cold = modified.apply(dict(files))
        incremental = modified.apply(dict(files), since=prior)
        assert incremental.incremental.patches_reused == 1
        assert incremental["a.c"].text == "void f(void) { other_api(); }\n"
        assert_results_identical(incremental, cold, "modified-tail")

    def test_reordered_tail_keeps_the_prefix(self):
        """Reordering patches *after* the shared prefix replays from the
        divergence point; only reordering the first patch costs a cold run
        (see TestFallbacks.test_diverged_first_patch_falls_back)."""
        texts = [RENAME_A, RENAME_B, "@r@ @@\n- new_api();\n+ last_api();\n"]
        files = {"a.c": "void f(void) { old_api(); }\n"}
        prior = PatchSet(_patches(*texts)).apply(files)
        swapped = [texts[0], texts[2], texts[1]]
        reordered = PatchSet(_patches(*swapped))
        cold = reordered.apply(dict(files))
        incremental = reordered.apply(dict(files), since=prior)
        assert incremental.incremental.fallback is None
        assert incremental.incremental.patches_reused == 1
        assert_results_identical(incremental, cold, "reordered-tail")

    def test_option_change_falls_back_cold(self):
        from repro.options import SpatchOptions

        patchset, codebase, prior = TestFallbacks()._prior()
        other = PatchSet([
            SemanticPatch.from_string(
                RENAME_A, name="p0",
                options=SpatchOptions(apply_isomorphisms=False)),
            SemanticPatch.from_string(
                RENAME_B, name="p1",
                options=SpatchOptions(apply_isomorphisms=False))])
        result = other.apply(codebase, since=prior)
        assert "no shared patch prefix" in result.incremental.fallback
        assert result["a.c"].text == "void f(void) { new_api(); }\n"

    def test_combined_tree_and_patch_delta(self):
        """An edited file re-runs the whole new chain while untouched files
        splice the prefix and replay only the suffix — in the same pass."""
        patches, codebase, prior = self._prior()
        mutated = _mutated(codebase, "change")
        extended = PatchSet(patches + [_cookbook_patch(APPEND_NAME)])
        cold = extended.apply(CodeBase.from_files(dict(mutated.files)))
        incremental = extended.apply(mutated, since=prior)
        stats = incremental.incremental
        assert stats.fallback is None
        assert stats.patches_reused == len(patches)
        assert stats.files_changed == 1
        assert stats.files_reused == len(mutated) - 1
        assert_results_identical(incremental, cold, "tree+patch")

    def test_corrupt_boundary_text_demotes_file_to_full_rerun(self):
        """Splice verification: a cached boundary text that no longer hashes
        to the recorded boundary (tampered/corrupt state) must re-run that
        file through the whole chain — wrong state never becomes output."""
        patchset = PatchSet(_patches(RENAME_A, RENAME_B))
        files = {"a.c": "void f(void) { old_api(); }\n", "b.c": "int z;\n"}
        prior = patchset.apply(files)
        prior.per_patch[1].files["a.c"].text = "void f(void) { EVIL(); }\n"
        extended = PatchSet(_patches(
            RENAME_A, RENAME_B, "@r@ @@\n- new_api();\n+ last_api();\n"))
        cold = extended.apply(dict(files))
        incremental = extended.apply(dict(files), since=prior)
        stats = incremental.incremental
        assert stats.fallback is None
        assert stats.files_changed == 1  # the tampered file, demoted
        assert stats.files_reused == 1
        assert incremental["a.c"].text == "void f(void) { last_api(); }\n"
        assert_results_identical(incremental, cold, "corrupt-boundary")

    def test_truncated_prior_result_degrades_not_crashes(self):
        """A prior result claiming more patch fingerprints than it carries
        per-patch results (tampered or half-rebuilt state) must degrade —
        splice what is actually there, cold-run otherwise — never raise."""
        files = {"a.c": "void f(void) { old_api(); }\n"}
        third = "@r@ @@\n- new_api();\n+ last_api();\n"
        extended = PatchSet(_patches(RENAME_A, RENAME_B, third))
        cold = extended.apply(dict(files))

        prior = PatchSet(_patches(RENAME_A, RENAME_B)).apply(dict(files))
        prior.per_patch = prior.per_patch[:1]  # fingerprints still claim 2
        partial = extended.apply(dict(files), since=prior)
        assert partial.incremental.fallback is None
        assert partial.incremental.patches_reused == 1  # capped at what exists
        assert_results_identical(partial, cold, "truncated-partial")

        prior = PatchSet(_patches(RENAME_A, RENAME_B)).apply(dict(files))
        prior.per_patch = []  # nothing left to splice from
        empty = extended.apply(dict(files), since=prior)
        assert "no shared patch prefix" in empty.incremental.fallback
        assert empty["a.c"].text == cold["a.c"].text

        # identical patch set (equal whole-set fingerprint) but truncated
        # per-patch results: the wholesale path must not be taken blindly
        same_set = PatchSet(_patches(RENAME_A, RENAME_B))
        cold_same = same_set.apply(dict(files))
        prior = same_set.apply(dict(files))
        prior.per_patch = prior.per_patch[:1]
        degraded = same_set.apply(dict(files), since=prior)
        assert degraded.incremental.fallback is None
        assert degraded.incremental.patches_reused == 1
        assert_results_identical(degraded, cold_same, "truncated-same-set")

        # a malformed record (wrong arity) re-runs its file, never crashes
        import dataclasses
        prior = same_set.apply(dict(files))
        prior.records["a.c"] = dataclasses.replace(prior.records["a.c"],
                                                   ran=(True,))
        short = same_set.apply(dict(files), since=prior)
        assert short.incremental.files_changed == 1
        assert_results_identical(short, cold_same, "short-record")

    def test_prior_without_patch_fingerprints_falls_back(self):
        """A result predating per-patch fingerprints (or a stripped one)
        cannot prove any shared prefix: cold run."""
        patchset, codebase, prior = TestFallbacks()._prior()
        prior.patch_fingerprints = []
        extended = PatchSet(_patches(RENAME_A, RENAME_B,
                                     "@r@ @@\n- new_api();\n+ last_api();\n"))
        result = extended.apply(codebase, since=prior)
        assert "no shared patch prefix" in result.incremental.fallback

    def test_records_carry_per_boundary_hashes(self):
        from repro.engine.cache import content_sha1

        patchset = PatchSet(_patches(RENAME_A, RENAME_B))
        files = {"a.c": "void f(void) { old_api(); }\n", "b.c": "int z;\n"}
        result = patchset.apply(files)
        for name, record in result.records.items():
            assert len(record.boundaries) == 2
            for index, boundary in enumerate(record.boundaries):
                assert boundary == content_sha1(
                    result.per_patch[index].files[name].text)

    def test_prefix_results_chain_into_further_increments(self):
        """A prefix-spliced result seeds the next edit-apply round like any
        other (its records are rebuilt for the new patch list)."""
        patches, codebase, prior = self._prior()
        extended = PatchSet(patches + [_cookbook_patch(APPEND_NAME)])
        first = extended.apply(codebase, since=prior)
        assert first.incremental.patches_reused == len(patches)
        mutated = _mutated(codebase, "add")
        cold = extended.apply(CodeBase.from_files(dict(mutated.files)))
        second = extended.apply(mutated, since=first)
        assert second.incremental.fallback is None
        assert second.incremental.patches_reused == len(patches) + 1
        assert second.incremental.files_added == 1
        assert_results_identical(second, cold, "chained-prefix")


class TestIncrementalStats:
    def test_describe_mentions_reuse_breakdown(self):
        stats = IncrementalStats(files_total=4, files_reused=3,
                                 files_changed=1)
        described = stats.describe()
        assert "3 reused (75%)" in described
        assert "1 changed" in described

    def test_describe_mentions_fallback(self):
        stats = IncrementalStats(files_total=2, fallback="no prior result")
        assert "cold run" in stats.describe()

    def test_rates_with_zero_files(self):
        assert IncrementalStats().reuse_rate == 0.0


# ---------------------------------------------------------------------------
# satellite fixes incremental mode depends on
# ---------------------------------------------------------------------------

class TestCodeBaseMutation:
    def test_delitem_removes_file_and_index_entry(self):
        codebase = CodeBase.from_files(
            {"a.c": "void f(void) { unique_marker(); }\n", "b.c": "int x;\n"})
        index = codebase.token_index()
        assert "unique_marker" in index.tokens_of("a.c")
        del codebase["a.c"]
        assert "a.c" not in codebase
        assert "a.c" not in index
        assert index.tokens_of("a.c") == frozenset()  # no stale tokens

    def test_delitem_keeps_prefilter_exact(self):
        """The regression the fix targets: after a deletion, an apply over
        the same CodeBase must not consult stale index entries."""
        codebase = CodeBase.from_files(
            {"hit.c": "void f(void) { old_api(); }\n", "miss.c": "int x;\n"})
        patch = SemanticPatch.from_string(RENAME_A)
        first = patch.apply(codebase)
        assert first["hit.c"].changed
        del codebase["hit.c"]
        second = patch.apply(codebase)
        assert list(second.files) == ["miss.c"]
        assert second.total_matches == 0

    def test_delitem_missing_raises_keyerror(self):
        with pytest.raises(KeyError):
            del CodeBase.from_files({})["ghost.c"]

    def test_refresh_from_dir_applies_the_disk_delta(self, tmp_path):
        (tmp_path / "keep.c").write_text("int keep;\n")
        (tmp_path / "edit.c").write_text("int before;\n")
        (tmp_path / "gone.c").write_text("int gone;\n")
        codebase = CodeBase.from_dir(tmp_path)
        index = codebase.token_index()
        assert "gone" in index.tokens_of("gone.c")

        (tmp_path / "edit.c").write_text("int after;\n")
        (tmp_path / "fresh.c").write_text("int fresh;\n")
        (tmp_path / "gone.c").unlink()
        delta = codebase.refresh_from_dir(tmp_path)

        assert delta == {"added": ["fresh.c"], "changed": ["edit.c"],
                         "removed": ["gone.c"]}
        assert codebase["edit.c"] == "int after;\n"
        assert "gone.c" not in codebase
        assert "after" in index.tokens_of("edit.c")
        assert "fresh" in index.tokens_of("fresh.c")
        assert "gone.c" not in index

    def test_refresh_from_dir_noop_reports_empty_delta(self, tmp_path):
        (tmp_path / "same.c").write_text("int same;\n")
        codebase = CodeBase.from_dir(tmp_path)
        assert codebase.refresh_from_dir(tmp_path) == \
            {"added": [], "changed": [], "removed": []}


class TestRunForkPool:
    def _forbid_pool(self, monkeypatch):
        import concurrent.futures

        def bomb(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("ProcessPoolExecutor must not be created")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", bomb)

    def test_empty_items_return_empty_without_a_pool(self, monkeypatch):
        from repro.engine.driver import run_fork_pool

        self._forbid_pool(monkeypatch)
        called = []
        assert run_fork_pool([], 4, lambda: called.append("init"), (),
                             lambda batch: batch) == []
        assert called == []  # not even the initializer runs

    def test_single_item_runs_in_process(self, monkeypatch):
        from repro.engine.driver import run_fork_pool

        self._forbid_pool(monkeypatch)
        state = {}

        def initializer(value):
            state["ready"] = value

        def worker(batch):
            assert state["ready"] == 42
            return [item * 2 for item in batch]

        assert run_fork_pool([21], 4, initializer, (42,), worker) == [42]

    def test_result_order_preserved_in_process(self, monkeypatch):
        from repro.engine.driver import run_fork_pool

        self._forbid_pool(monkeypatch)
        out = run_fork_pool(["a"], 1, lambda: None, (), list)
        assert out == ["a"]


class TestResultForKeyError:
    def test_unknown_name_raises_keyerror_listing_patches(self):
        patchset = PatchSet(_patches(RENAME_A, RENAME_B))
        result = patchset.apply({"a.c": "void f(void) { old_api(); }\n"})
        with pytest.raises(KeyError) as excinfo:
            result.result_for("nonexistent")
        message = str(excinfo.value)
        assert "nonexistent" in message
        assert "'p0'" in message and "'p1'" in message

    def test_known_name_and_index_still_work(self):
        patchset = PatchSet(_patches(RENAME_A, RENAME_B))
        result = patchset.apply({"a.c": "void f(void) { old_api(); }\n"})
        assert result.result_for("p1") is result.per_patch[1]
        assert result.result_for(0) is result.per_patch[0]


# ---------------------------------------------------------------------------
# persisted state round-trips
# ---------------------------------------------------------------------------

class TestPipelineState:
    def test_round_trip_preserves_result_and_cache(self, tmp_path):
        from repro.engine.cache import TreeCache

        patchset = PatchSet(_patches(RENAME_A, RENAME_B))
        cache = TreeCache()
        cache.get_or_parse("int cached;\n", "c.c",
                           patchset[0].options)
        result = patchset.apply({"a.c": "void f(void) { old_api(); }\n"})
        target = tmp_path / "state.bin"
        PipelineState(result=result, cache_entries=cache.snapshot()) \
            .save(target)

        loaded = PipelineState.load(target)
        assert loaded is not None
        assert loaded.fingerprint == result.fingerprint
        assert loaded.result == result
        assert loaded.result.records == result.records
        restored = TreeCache()
        assert restored.restore(loaded.cache_entries) == 1

    def test_loaded_state_seeds_an_incremental_run(self, tmp_path):
        patchset = PatchSet(_patches(RENAME_A, RENAME_B))
        files = {"a.c": "void f(void) { old_api(); }\n", "b.c": "int z;\n"}
        result = patchset.apply(files)
        target = tmp_path / "state.bin"
        PipelineState(result=result).save(target)

        loaded = PipelineState.load(target)
        again = patchset.apply(files, since=loaded.result)
        assert again.incremental.files_reused == 2
        assert_results_identical(again, result, "persisted")

    def test_load_of_missing_or_corrupt_returns_none(self, tmp_path):
        assert PipelineState.load(tmp_path / "absent.bin") is None
        corrupt = tmp_path / "corrupt.bin"
        corrupt.write_bytes(b"\x80\x04 garbage")
        assert PipelineState.load(corrupt) is None
        # a bad protocol marker raises ValueError, not UnpicklingError —
        # it must degrade just the same (and for TreeCache.load too)
        bad_protocol = tmp_path / "proto.bin"
        bad_protocol.write_bytes(b"\x80\x63spam")
        assert PipelineState.load(bad_protocol) is None
        from repro.engine.cache import TreeCache
        assert TreeCache().load(bad_protocol) == 0

    def test_save_caps_embedded_cache_entries(self, tmp_path):
        """State-file hygiene: the embedded parse-cache snapshot is bounded
        (LRU-coldest entries dropped past the cap) and a capped state still
        loads, restores and seeds reuse."""
        from repro.engine.cache import TreeCache

        patchset = PatchSet(_patches(RENAME_A, RENAME_B))
        cache = TreeCache()
        for index in range(6):
            cache.get_or_parse(f"int cached_{index};\n", f"f{index}.c",
                               patchset[0].options)
        hottest = f"int cached_5;\n"
        result = patchset.apply({"a.c": "void f(void) { old_api(); }\n"})
        target = tmp_path / "state.bin"
        PipelineState(result=result, cache_entries=cache.snapshot(),
                      max_cache_entries=2).save(target)

        loaded = PipelineState.load(target)
        assert loaded is not None
        assert len(loaded.cache_entries) == 2
        restored = TreeCache()
        assert restored.restore(loaded.cache_entries) == 2
        # the kept entries are the LRU-hottest: the last text parsed hits
        hits0, _ = restored.stats()
        restored.get_or_parse(hottest, "f5.c", patchset[0].options)
        assert restored.stats()[0] == hits0 + 1
        # and the result still seeds an incremental run
        again = patchset.apply({"a.c": "void f(void) { old_api(); }\n"},
                               since=loaded.result)
        assert again.incremental.files_reused == 1

    def test_load_of_wrong_version_returns_none(self, tmp_path):
        import pickle

        target = tmp_path / "old.bin"
        target.write_bytes(pickle.dumps({"version": -1, "result": None}))
        assert PipelineState.load(target) is None

    def test_save_cap_keeps_most_recently_used_not_newest_inserted(
            self, tmp_path):
        """The capped snapshot is *recency* order: an old entry touched just
        before saving must survive the cap, and the true-coldest entry —
        not the oldest-inserted — is what gets dropped."""
        from repro.engine.cache import TreeCache

        patchset = PatchSet(_patches(RENAME_A, RENAME_B))
        cache = TreeCache()
        for index in range(4):
            cache.get_or_parse(f"int cached_{index};\n", f"f{index}.c",
                               patchset[0].options)
        # touch the oldest-inserted entry: it is now the hottest
        cache.get_or_parse("int cached_0;\n", "f0.c", patchset[0].options)

        result = patchset.apply({"a.c": "void f(void) { old_api(); }\n"})
        target = tmp_path / "state.bin"
        PipelineState(result=result, cache_entries=cache.snapshot(),
                      max_cache_entries=2).save(target)

        loaded = PipelineState.load(target)
        kept = TreeCache()
        kept.restore(loaded.cache_entries)
        kept.get_or_parse("int cached_0;\n", "f0.c", patchset[0].options)
        kept.get_or_parse("int cached_3;\n", "f3.c", patchset[0].options)
        assert kept.stats() == (2, 0)  # the touched-old + last-inserted hit
        # cached_1 was the true LRU-coldest: it fell past the cap
        kept.get_or_parse("int cached_1;\n", "f1.c", patchset[0].options)
        assert kept.stats() == (2, 1)


# ---------------------------------------------------------------------------
# CLI: --incremental and --watch
# ---------------------------------------------------------------------------

class TestCliIncremental:
    def _setup(self, tmp_path):
        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_A)
        src = tmp_path / "src"
        src.mkdir()
        (src / "hit.c").write_text("void f(void) { old_api(); }\n")
        (src / "miss.c").write_text("int zero;\n")
        return str(cocci), str(src), str(tmp_path / "state.bin")

    def test_second_invocation_reuses_everything(self, tmp_path, capsys):
        cocci, src, state = self._setup(tmp_path)
        argv = ["--sp-file", cocci, "--incremental", state, "--profile", src]
        assert spatch_main(argv) == 0
        first = capsys.readouterr()
        assert "incremental" not in first.err  # cold: no prior state

        assert spatch_main(argv) == 0
        second = capsys.readouterr()
        assert "2 reused (100%)" in second.err
        assert second.out == first.out  # identical diff

    def test_edited_file_reruns_alone(self, tmp_path, capsys):
        cocci, src, state = self._setup(tmp_path)
        argv = ["--sp-file", cocci, "--incremental", state, "--profile", src]
        spatch_main(argv)
        capsys.readouterr()
        (tmp_path / "src" / "hit.c").write_text(
            "void f(void) { old_api(); other(); }\n")
        assert spatch_main(argv) == 0
        captured = capsys.readouterr()
        assert "1 reused (50%)" in captured.err
        assert "1 changed + 0 added re-run" in captured.err

    def test_stale_state_from_other_patch_degrades_to_cold(self, tmp_path,
                                                           capsys):
        cocci, src, state = self._setup(tmp_path)
        spatch_main(["--sp-file", cocci, "--incremental", state, src])
        capsys.readouterr()
        other = tmp_path / "other.cocci"
        other.write_text(RENAME_B)
        rc = spatch_main(["--sp-file", str(other), "--incremental", state,
                          "--profile", src])
        captured = capsys.readouterr()
        assert rc == 1  # RENAME_B matches nothing in the pristine tree
        assert "fell back to a cold run" in captured.err

    def test_appended_patch_between_invocations_splices_prefix(self, tmp_path,
                                                               capsys):
        """A second invocation with one more --sp-file reuses the persisted
        prefix: only the appended patch re-runs."""
        cocci, src, state = self._setup(tmp_path)
        spatch_main(["--sp-file", cocci, "--incremental", state, src])
        capsys.readouterr()
        extra = tmp_path / "extra.cocci"
        extra.write_text(RENAME_B)
        rc = spatch_main(["--sp-file", cocci, "--sp-file", str(extra),
                          "--incremental", state, "--profile", src])
        captured = capsys.readouterr()
        assert rc == 0
        assert "patch prefix: 1/2 spliced, 1 suffix patch(es) re-run" \
            in captured.err
        assert "2 reused (100%)" in captured.err
        # mid_api (written by the prefix patch) became new_api via the suffix
        assert "+void f(void) { new_api(); }" in captured.out

    def test_single_patch_incremental_uses_pipeline_result(self, tmp_path):
        """--incremental with one --sp-file must still persist a seedable
        state (the single-patch fast path bypasses the pipeline otherwise)."""
        cocci, src, state = self._setup(tmp_path)
        spatch_main(["--sp-file", cocci, "--incremental", state, src])
        loaded = PipelineState.load(state)
        assert loaded is not None
        assert loaded.result.records


class TestCliWatch:
    def test_watch_rerun_touches_only_the_edited_file(self, tmp_path, capsys):
        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_A)
        src = tmp_path / "src"
        src.mkdir()
        (src / "edit.c").write_text("void f(void) { old_api(); }\n")
        (src / "quiet.c").write_text("void g(void) { old_api(); }\n")

        def edit_later():
            time.sleep(0.6)
            (src / "edit.c").write_text(
                "void f(void) { old_api(); newly_added(); }\n")

        editor = threading.Thread(target=edit_later)
        editor.start()
        try:
            rc = spatch_main(["--sp-file", str(cocci), "--watch",
                              "--watch-interval", "0.05",
                              "--watch-polls", "40", str(src)])
        finally:
            editor.join()
        captured = capsys.readouterr()
        assert rc == 0
        watch_lines = [line for line in captured.err.splitlines()
                       if line.startswith("# watch:")]
        assert watch_lines == ["# watch: 1 changed + 0 added re-run, "
                               "1 reused, 0 dropped -> 2 match(es)"]
        # the re-run round printed only the edited file's diff
        rounds = captured.out.split("--- a/")
        assert len(rounds) == 4  # initial: two files; round two: one
        assert "newly_added" in rounds[-1]
        assert "quiet.c" not in rounds[-1]

    def test_watch_in_place_never_reapplies_its_own_rewrites(self, tmp_path,
                                                             capsys):
        """Regression: the initial in-place rewrites must be folded into
        the watch baseline from memory — with a *non-idempotent* patch, an
        external edit to another file must not re-trigger (and re-apply)
        the patch on the tool's own output."""
        cocci = tmp_path / "grow.cocci"
        # matches its own output: every re-application appends another call
        cocci.write_text("@g@ @@\n  marker();\n+ grown();\n")
        src = tmp_path / "src"
        src.mkdir()
        (src / "stable.c").write_text("void f(void) { marker(); }\n")
        (src / "other.c").write_text("int untouched;\n")

        def edit_later():
            time.sleep(0.6)
            (src / "other.c").write_text("int edited;\n")

        editor = threading.Thread(target=edit_later)
        editor.start()
        try:
            rc = spatch_main(["--sp-file", str(cocci), "--watch", "--in-place",
                              "--watch-interval", "0.05",
                              "--watch-polls", "40", str(src)])
        finally:
            editor.join()
        capsys.readouterr()
        assert rc == 0
        # one application from the initial run, none from the watch round
        assert (src / "stable.c").read_text().count("grown();") == 1

    def test_watch_spfile_edit_reruns_only_suffix_patches(self, tmp_path,
                                                          capsys):
        """Editing an sp-file mid-watch re-applies with the prior result:
        the unchanged leading patch splices, only the edited suffix patch
        re-runs, and only output-changed files are emitted."""
        first = tmp_path / "first.cocci"
        first.write_text(RENAME_A)
        second = tmp_path / "second.cocci"
        second.write_text(RENAME_B)
        src = tmp_path / "src"
        src.mkdir()
        (src / "hit.c").write_text("void f(void) { old_api(); }\n")
        (src / "quiet.c").write_text("int zero;\n")

        def edit_later():
            time.sleep(0.6)
            second.write_text("@r@ @@\n- mid_api();\n+ changed_api();\n")

        editor = threading.Thread(target=edit_later)
        editor.start()
        try:
            rc = spatch_main(["--sp-file", str(first), "--sp-file",
                              str(second), "--watch",
                              "--watch-interval", "0.05",
                              "--watch-polls", "40", str(src)])
        finally:
            editor.join()
        captured = capsys.readouterr()
        assert rc == 0
        watch_lines = [line for line in captured.err.splitlines()
                       if line.startswith("# watch:")]
        assert watch_lines == ["# watch: 0 changed + 0 added re-run, "
                               "2 reused, 0 dropped, patch prefix 1/2 "
                               "spliced -> 2 match(es)"]
        # the patch-edit round emitted only the file the new suffix affects
        rounds = captured.out.split("--- a/")
        assert len(rounds) == 3  # initial: hit.c; patch round: hit.c again
        assert "changed_api" in rounds[-1]
        assert "quiet.c" not in rounds[-1]

    def test_watch_spfile_edit_never_rewrites_unaffected_files(self, tmp_path,
                                                               capsys):
        """--in-place + a patch edit whose outcome is identical must not
        rewrite anything: emission is gated on *output* changes."""
        first = tmp_path / "first.cocci"
        first.write_text(RENAME_A)
        second = tmp_path / "second.cocci"
        second.write_text(RENAME_B)
        src = tmp_path / "src"
        src.mkdir()
        (src / "hit.c").write_text("void f(void) { old_api(); }\n")
        (src / "other.c").write_text("int untouched;\n")

        def edit_later():
            time.sleep(0.6)
            # rewrites mid_api too — but the initial round already turned
            # hit.c into new_api form, so no file's output changes
            second.write_text("@r@ @@\n- mid_api();\n+ other_api();\n")

        editor = threading.Thread(target=edit_later)
        editor.start()
        try:
            rc = spatch_main(["--sp-file", str(first), "--sp-file",
                              str(second), "--watch", "--in-place",
                              "--watch-interval", "0.05",
                              "--watch-polls", "40", str(src)])
        finally:
            editor.join()
        captured = capsys.readouterr()
        assert rc == 0
        rewrites = [line for line in captured.err.splitlines()
                    if line.startswith("rewrote ")]
        assert len(rewrites) == 1  # the initial round's hit.c — nothing else
        assert "hit.c" in rewrites[0]
        assert (src / "hit.c").read_text() == "void f(void) { new_api(); }\n"
        assert (src / "other.c").read_text() == "int untouched;\n"

    def test_watch_broken_spfile_keeps_previous_patches(self, tmp_path,
                                                        capsys):
        """A mid-edit save that fails to parse is reported and skipped; the
        session keeps running with the previous patches."""
        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_A)
        target = tmp_path / "a.c"
        target.write_text("void f(void) { old_api(); }\n")

        def break_later():
            time.sleep(0.4)
            cocci.write_text("@broken rule without closing\n- nonsense")

        editor = threading.Thread(target=break_later)
        editor.start()
        try:
            rc = spatch_main(["--sp-file", str(cocci), "--watch",
                              "--watch-interval", "0.05",
                              "--watch-polls", "30", str(target)])
        finally:
            editor.join()
        captured = capsys.readouterr()
        assert rc == 0  # the initial round matched
        assert "keeping the previous patches" in captured.err

    def test_watch_ignores_touch_without_content_change(self, tmp_path,
                                                        capsys):
        import os

        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_A)
        target = tmp_path / "a.c"
        target.write_text("void f(void) { old_api(); }\n")

        def touch_later():
            time.sleep(0.3)
            os.utime(target)  # mtime changes, content does not

        toucher = threading.Thread(target=touch_later)
        toucher.start()
        try:
            rc = spatch_main(["--sp-file", str(cocci), "--watch",
                              "--watch-interval", "0.05",
                              "--watch-polls", "20", str(target)])
        finally:
            toucher.join()
        captured = capsys.readouterr()
        assert rc == 0
        assert "# watch:" not in captured.err  # nothing re-ran
