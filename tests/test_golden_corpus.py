"""Golden regression corpus: expected unified diffs per cookbook patch.

Every cookbook patch applied to its bundled example workload must produce
*exactly* the checked-in diff under ``tests/golden/`` — engine refactors
(driver, prefilter, cache, pipeline, matcher, printer...) can change how the
work is orchestrated but never what a patch does to a tree.  The workloads
are seeded generators, so the corpus is deterministic.

To regenerate after an *intentional* transformation change::

    PYTHONPATH=src python tests/test_golden_corpus.py --regen

then review the corpus diff like any other code change.
"""

import pathlib
import sys

import pytest

from repro import CodeBase, PatchSet

import frontend_corpus
from test_prefilter import COOKBOOK_WORKLOADS, _cookbook_patch

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: golden file for the whole-cookbook pipeline (12 patches, one batch pass)
PIPELINE_GOLDEN = "full_modernization"

#: golden file per machine-patch frontend format, applied to the shared
#: frontend corpus (see tests/frontend_corpus.py)
FRONTEND_GOLDENS = {f"frontend_{fmt}": fmt
                    for fmt in sorted(frontend_corpus.PATCH_TEXTS)}


def _expected_diff(name: str) -> str:
    """The diff the cookbook patch produces on its example workload today."""
    workload = COOKBOOK_WORKLOADS[name]()
    return _cookbook_patch(name).apply(workload).diff()


def _pipeline_workload() -> CodeBase:
    """Every cookbook workload under its patch-name prefix: the combined
    tree the full 12-patch pipeline is goldened over (all generators are
    seeded, so the corpus stays deterministic)."""
    files: dict[str, str] = {}
    for name in sorted(COOKBOOK_WORKLOADS):
        for filename, text in COOKBOOK_WORKLOADS[name]().items():
            files[f"{name}/{filename}"] = text
    return CodeBase.from_files(files)


def _expected_pipeline_diff() -> str:
    """The *combined* diff (input tree -> after all 12 patches, in cookbook
    order) of the full_modernization pipeline — end-to-end composition, not
    just the per-patch diffs the per-cookbook goldens pin down."""
    from repro.cookbook import full_modernization_pipeline

    patchset = full_modernization_pipeline(
        mdspan_arrays={"rho": 3, "phi": 3})  # the GADGET workload's arrays
    return patchset.apply(_pipeline_workload()).diff()


def _expected_frontend_diff(fmt: str) -> str:
    """The diff one frontend-format patch produces on the shared corpus."""
    patch = frontend_corpus.frontend_patch(fmt)
    return PatchSet([patch]).apply(frontend_corpus.codebase()).diff()


@pytest.mark.parametrize("name", sorted(COOKBOOK_WORKLOADS))
def test_cookbook_diff_matches_golden(name):
    golden_path = GOLDEN_DIR / f"{name}.diff"
    assert golden_path.exists(), \
        f"missing golden file {golden_path}; run tests/test_golden_corpus.py --regen"
    golden = golden_path.read_text(encoding="utf-8", errors="surrogateescape")
    produced = _expected_diff(name)
    assert produced == golden, (
        f"cookbook patch {name!r} no longer produces its golden diff; if the "
        f"transformation change is intentional, regenerate with "
        f"'PYTHONPATH=src python tests/test_golden_corpus.py --regen' and "
        f"review the corpus delta")


def test_full_modernization_pipeline_matches_golden():
    """The whole-cookbook batch pass must reproduce its checked-in combined
    diff exactly — this pins down cross-patch *composition* (insertion
    order, chains where one patch's output feeds the next), which the
    per-patch goldens cannot see."""
    golden_path = GOLDEN_DIR / f"{PIPELINE_GOLDEN}.diff"
    assert golden_path.exists(), \
        f"missing golden file {golden_path}; run tests/test_golden_corpus.py --regen"
    golden = golden_path.read_text(encoding="utf-8", errors="surrogateescape")
    produced = _expected_pipeline_diff()
    assert produced == golden, (
        "the full_modernization pipeline no longer produces its golden "
        "combined diff; if the transformation change is intentional, "
        "regenerate with 'PYTHONPATH=src python tests/test_golden_corpus.py "
        "--regen' and review the corpus delta")


@pytest.mark.parametrize("name", sorted(FRONTEND_GOLDENS))
def test_frontend_diff_matches_golden(name):
    """Each machine-patch frontend format must keep producing its golden
    diff on the shared corpus — locator, splice and parser changes can
    reorganize how the edit is found but never what it does."""
    golden_path = GOLDEN_DIR / f"{name}.diff"
    assert golden_path.exists(), \
        f"missing golden file {golden_path}; run tests/test_golden_corpus.py --regen"
    golden = golden_path.read_text(encoding="utf-8", errors="surrogateescape")
    produced = _expected_frontend_diff(FRONTEND_GOLDENS[name])
    assert produced == golden, (
        f"frontend format {FRONTEND_GOLDENS[name]!r} no longer produces its "
        f"golden diff; if the change is intentional, regenerate with "
        f"'PYTHONPATH=src python tests/test_golden_corpus.py --regen' and "
        f"review the corpus delta")


def test_corpus_has_no_orphans():
    """Every golden file corresponds to a cookbook patch (catch renames)."""
    names = {path.stem for path in GOLDEN_DIR.glob("*.diff")}
    assert names == (set(COOKBOOK_WORKLOADS) | {PIPELINE_GOLDEN}
                     | set(FRONTEND_GOLDENS))


def _regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in sorted(COOKBOOK_WORKLOADS):
        diff = _expected_diff(name)
        assert diff, f"{name}: empty diff — patch/workload pairing broken"
        (GOLDEN_DIR / f"{name}.diff").write_text(
            diff, encoding="utf-8", errors="surrogateescape")
        print(f"wrote golden/{name}.diff ({len(diff.splitlines())} lines)")
    diff = _expected_pipeline_diff()
    assert diff, "full_modernization: empty combined diff — pipeline broken"
    (GOLDEN_DIR / f"{PIPELINE_GOLDEN}.diff").write_text(
        diff, encoding="utf-8", errors="surrogateescape")
    print(f"wrote golden/{PIPELINE_GOLDEN}.diff "
          f"({len(diff.splitlines())} lines)")
    for name in sorted(FRONTEND_GOLDENS):
        diff = _expected_frontend_diff(FRONTEND_GOLDENS[name])
        assert diff, f"{name}: empty diff — frontend corpus pairing broken"
        (GOLDEN_DIR / f"{name}.diff").write_text(
            diff, encoding="utf-8", errors="surrogateescape")
        print(f"wrote golden/{name}.diff ({len(diff.splitlines())} lines)")


if __name__ == "__main__":
    if "--regen" not in sys.argv:
        sys.exit("usage: python tests/test_golden_corpus.py --regen")
    _regenerate()
