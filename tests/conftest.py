"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import CodeBase, SpatchOptions
from repro.lang.parser import parse_source


@pytest.fixture
def cxx_options() -> SpatchOptions:
    return SpatchOptions(cxx=17)


@pytest.fixture
def simple_c_code() -> str:
    return """\
#include <omp.h>
#include "util.h"
#define N 1024

struct particle { double pos[3]; double mass; };
struct particle P[1024];

static double kernel_density(const struct particle *p, int n) {
    double acc = 0.0;
    #pragma omp parallel for reduction(+:acc)
    for (int i = 0; i < n; ++i) {
        acc += p[i].mass * p[i].pos[0];
        if (acc > 1e9) { acc = 0.0; break; }
    }
    return acc;
}

int find_flag(int arr[], int n, int k) {
    bool result = false;
    for (int idx = 0; idx < n; idx++) {
        if (arr[idx] == k) { result = true; break; }
    }
    return result ? 1 : 0;
}
"""


@pytest.fixture
def simple_tree(simple_c_code):
    return parse_source(simple_c_code, "simple.c")


@pytest.fixture
def omp_region_code() -> str:
    return """\
#include <stdio.h>
#include <omp.h>

void daxpy(int n, double a, double *x, double *y) {
    #pragma omp parallel
    {
        #pragma omp for
        for (int i = 0; i < n; i++) {
            y[i] = a * x[i] + y[i];
        }
    }
}

void scale(int n, double a, double *x) {
    #pragma omp parallel for
    for (int i = 0; i < n; i++) {
        x[i] = a * x[i];
    }
}
"""


@pytest.fixture
def unrolled_code() -> str:
    return """\
void scale4(double *y, const double *x, double a, int n) {
    for (int idx=0; idx+4-1 < n; idx+=4)
    {
        y[idx+0] = a * x[idx+0];
        y[idx+1] = a * x[idx+1];
        y[idx+2] = a * x[idx+2];
        y[idx+3] = a * x[idx+3];
    }
}
"""


@pytest.fixture
def tiny_codebase(omp_region_code, unrolled_code) -> CodeBase:
    return CodeBase.from_files({"omp.c": omp_region_code, "unrolled.c": unrolled_code})
