"""TransformMemo: content-addressed transform memoization.

The soundness contract under test: a memo hit is byte-for-byte equivalent
to running the session cold — same output text, same per-rule reports,
same diagnostics, same coverage counters — across processes (the on-disk
tier), across workspaces (the service's shared memo) and across the
serial/parallel apply paths.  Corrupt or stale persisted entries degrade
to a miss, never to wrong output or an error.
"""

import os
import pathlib
import pickle

import pytest

from repro import CodeBase, PatchSet, SemanticPatch
from repro.engine.cache import TreeCache, content_sha1
from repro.engine.memo import (DEFAULT_MEMO_ENTRIES, MemoEntry,
                               TransformMemo, memo_flags)
from repro.engine.report import FileResult, RuleReport

RENAME_A = "@r@ @@\n- old_api();\n+ mid_api();\n"
RENAME_B = "@r@ @@\n- mid_api();\n+ new_api();\n"

HIT_TEXT = "void f(void) { old_api(); }\n"
MISS_TEXT = "int zero(void) { return 0; }\n"


def _patches(*texts):
    return [SemanticPatch.from_string(text, name=f"p{i}")
            for i, text in enumerate(texts)]


def _entry(filename="a.c", text=None, diagnostics=()):
    return MemoEntry(filename=filename, text=text,
                     output_sha=content_sha1(text) if text else None,
                     reports=(("r", 1, 1, 1),), diagnostics=diagnostics)


def _texts(result):
    return {name: file_result.text
            for name, file_result in result.files.items()}


def _reports(result):
    return {name: [(r.rule, r.matches, r.deletions, r.insertions)
                   for r in file_result.rule_reports]
            for name, file_result in result.files.items()}


class TestMemoEntry:
    def test_round_trips_a_changed_file_result(self):
        original = FileResult(
            filename="a.c", original_text="int a;\n", text="int b;\n",
            rule_reports=[RuleReport(rule="r", matches=2, deletions=1,
                                     insertions=1)],
            diagnostics=["a.c: note"])
        entry = MemoEntry.from_file_result(original)
        assert entry.changed
        assert entry.output_sha == content_sha1("int b;\n")
        rebuilt = entry.to_file_result("a.c", "int a;\n")
        assert rebuilt.text == original.text
        assert rebuilt.original_text == original.original_text
        assert rebuilt.diagnostics == original.diagnostics
        assert [(r.rule, r.matches) for r in rebuilt.rule_reports] == \
            [("r", 2)]

    def test_unchanged_entry_stores_no_text(self):
        untouched = FileResult(filename="a.c", original_text="int a;\n",
                               text="int a;\n", rule_reports=[],
                               diagnostics=[])
        entry = MemoEntry.from_file_result(untouched)
        assert not entry.changed
        assert entry.text is None and entry.output_sha is None
        rebuilt = entry.to_file_result("other.c", "int a;\n")
        assert rebuilt.text == "int a;\n"
        assert not rebuilt.changed


class TestMemoFlags:
    def test_every_mode_combination_is_distinct(self):
        flags = {memo_flags(prefilter, compiled)
                 for prefilter in (True, False)
                 for compiled in (True, False)}
        assert len(flags) == 4


class TestMemoryTier:
    def test_lookup_miss_then_store_then_hit(self):
        memo = TransformMemo()
        assert memo.lookup("sha", "fp", "pc", "a.c") is None
        memo.store("sha", "fp", "pc", _entry())
        entry = memo.lookup("sha", "fp", "pc", "a.c")
        assert entry is not None and entry.reports == (("r", 1, 1, 1),)
        assert memo.stats() == (1, 1)
        assert memo.stores == 1

    def test_keys_distinguish_every_component(self):
        memo = TransformMemo()
        memo.store("sha", "fp", "pc", _entry())
        assert memo.lookup("other", "fp", "pc", "a.c") is None
        assert memo.lookup("sha", "other", "pc", "a.c") is None
        assert memo.lookup("sha", "fp", "-c", "a.c") is None

    def test_lru_eviction_drops_least_recently_used(self):
        memo = TransformMemo(max_entries=2)
        memo.store("s1", "fp", "pc", _entry())
        memo.store("s2", "fp", "pc", _entry())
        memo.lookup("s1", "fp", "pc", "a.c")  # refresh s1: s2 is coldest
        memo.store("s3", "fp", "pc", _entry())
        assert memo.evictions == 1
        assert memo.lookup("s2", "fp", "pc", "a.c") is None  # evicted
        assert memo.lookup("s1", "fp", "pc", "a.c") is not None
        assert memo.lookup("s3", "fp", "pc", "a.c") is not None
        assert len(memo) == 2

    def test_restore_of_known_key_does_not_recount_stores(self):
        memo = TransformMemo()
        memo.store("sha", "fp", "pc", _entry())
        memo.store("sha", "fp", "pc", _entry())
        assert memo.stores == 1

    def test_diagnostics_pin_the_filename(self):
        # diagnostics embed the filename they were produced under: an entry
        # carrying them must not answer an identically-hashed other file
        memo = TransformMemo()
        memo.store("sha", "fp", "pc",
                   _entry(filename="a.c", diagnostics=("a.c: warn",)))
        assert memo.lookup("sha", "fp", "pc", "b.c") is None
        assert memo.lookup("sha", "fp", "pc", "a.c") is not None
        # ...while diagnostic-free entries are filename-portable
        memo.store("sha2", "fp", "pc", _entry(filename="a.c"))
        assert memo.lookup("sha2", "fp", "pc", "b.c") is not None

    def test_clear_resets_memory_tier_and_counters(self):
        memo = TransformMemo()
        memo.store("sha", "fp", "pc", _entry())
        memo.lookup("sha", "fp", "pc", "a.c")
        memo.clear()
        assert len(memo) == 0
        assert memo.stats() == (0, 0)
        assert memo.counters()["stores"] == 0


class TestDiskTier:
    def test_round_trip_across_instances(self, tmp_path):
        first = TransformMemo(path=tmp_path / "memo")
        first.store("sha", "fp", "pc", _entry(text="int b;\n"))
        assert first.disk_stores == 1

        fresh = TransformMemo(path=tmp_path / "memo")  # a "new process"
        entry = fresh.lookup("sha", "fp", "pc", "a.c")
        assert entry is not None and entry.text == "int b;\n"
        assert fresh.disk_hits == 1 and fresh.stats() == (1, 0)
        # promoted into the memory tier: the next lookup skips the disk
        fresh.lookup("sha", "fp", "pc", "a.c")
        assert fresh.disk_hits == 1 and fresh.hits == 2

    def test_entries_are_sharded_content_addressed_files(self, tmp_path):
        memo = TransformMemo(path=tmp_path / "memo")
        memo.store("sha", "fp", "pc", _entry())
        files = list((tmp_path / "memo").rglob("*.memo"))
        assert len(files) == 1
        assert files[0].parent.name == files[0].name[:2]  # 2-hex shard dir

    def test_corrupt_entry_degrades_to_a_miss_and_is_unlinked(self, tmp_path):
        memo = TransformMemo(path=tmp_path / "memo")
        memo.store("sha", "fp", "pc", _entry())
        entry_file = next((tmp_path / "memo").rglob("*.memo"))
        entry_file.write_bytes(b"not a pickle at all")

        fresh = TransformMemo(path=tmp_path / "memo")
        assert fresh.lookup("sha", "fp", "pc", "a.c") is None
        assert fresh.disk_errors == 1 and fresh.disk_misses == 1
        assert not entry_file.exists()  # dropped so the next store heals it
        # ...and a store after the miss does heal it
        fresh.store("sha", "fp", "pc", _entry())
        again = TransformMemo(path=tmp_path / "memo")
        assert again.lookup("sha", "fp", "pc", "a.c") is not None

    def test_stale_version_and_key_mismatch_rejected(self, tmp_path):
        memo = TransformMemo(path=tmp_path / "memo")
        memo.store("sha", "fp", "pc", _entry())
        entry_file = next((tmp_path / "memo").rglob("*.memo"))

        payload = pickle.loads(entry_file.read_bytes())
        payload["version"] = 999
        entry_file.write_bytes(pickle.dumps(payload))
        fresh = TransformMemo(path=tmp_path / "memo")
        assert fresh.lookup("sha", "fp", "pc", "a.c") is None

        fresh.store("sha", "fp", "pc", _entry())  # re-publish, corrupt the key
        entry_file = next((tmp_path / "memo").rglob("*.memo"))
        payload = pickle.loads(entry_file.read_bytes())
        payload["key"] = ("other", "fp", "pc")
        entry_file.write_bytes(pickle.dumps(payload))
        again = TransformMemo(path=tmp_path / "memo")
        assert again.lookup("sha", "fp", "pc", "a.c") is None
        assert again.disk_errors == 1

    def test_write_failure_degrades_to_memory_only(self, tmp_path,
                                                   monkeypatch):
        # a full or read-only disk must never break the apply (chmod is not
        # a usable simulation under root, so fail the publish itself)
        import tempfile

        from repro.engine import memo as memo_module

        memo = TransformMemo(path=tmp_path / "memo")

        def failing_mkstemp(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(memo_module.tempfile, "mkstemp", failing_mkstemp)
        memo.store("sha", "fp", "pc", _entry())
        assert memo.disk_errors == 1 and memo.disk_stores == 0
        # the memory tier still answers
        assert memo.lookup("sha", "fp", "pc", "a.c") is not None


class TestPipelineIntegration:
    def test_warm_run_is_byte_identical_without_parsing(self):
        files = {"hit.c": HIT_TEXT, "miss.c": MISS_TEXT}
        patches = _patches(RENAME_A, RENAME_B)
        cold = PatchSet(patches).apply(CodeBase.from_files(files))

        memo = TransformMemo()
        first = PatchSet(patches).apply(CodeBase.from_files(files),
                                        memo=memo)
        warm = PatchSet(patches).apply(CodeBase.from_files(files),
                                       memo=memo)
        assert _texts(warm) == _texts(first) == _texts(cold)
        assert _reports(warm) == _reports(cold)
        assert warm.stats.memo_hits == 2  # both patches on hit.c
        assert warm.stats.memo_misses == 0
        # coverage counters match the cold run exactly: a memo hit is a
        # logical session, and skip decisions are re-planned, not memoized
        assert warm.stats.sessions_run == cold.stats.sessions_run
        assert warm.stats.files_skipped == cold.stats.files_skipped

    def test_duplicate_files_hit_within_one_cold_run(self):
        files = {"a.c": HIT_TEXT, "b.c": HIT_TEXT, "c.c": HIT_TEXT}
        memo = TransformMemo()
        result = PatchSet(_patches(RENAME_A)).apply(
            CodeBase.from_files(files), memo=memo)
        assert result.stats.memo_misses == 1  # one real session...
        assert result.stats.memo_hits == 2    # ...answers the duplicates
        assert len(set(_texts(result).values())) == 1

    def test_disk_tier_warms_a_fresh_process(self, tmp_path):
        files = {"hit.c": HIT_TEXT}
        patches = _patches(RENAME_A, RENAME_B)
        cold = PatchSet(patches).apply(CodeBase.from_files(files))
        PatchSet(patches).apply(CodeBase.from_files(files),
                                memo=TransformMemo(path=tmp_path / "m"))

        fresh = TransformMemo(path=tmp_path / "m")  # simulates a new process
        warm = PatchSet(patches).apply(CodeBase.from_files(files),
                                       memo=fresh)
        assert _texts(warm) == _texts(cold)
        assert warm.stats.memo_hits == 2 and warm.stats.memo_misses == 0
        assert fresh.disk_hits == 2

    def test_parallel_apply_uses_and_fills_the_memo(self, tmp_path):
        files = {f"f{i}.c": HIT_TEXT.replace("f(", f"f{i}(")
                 for i in range(6)}
        patches = _patches(RENAME_A, RENAME_B)
        cold = PatchSet(patches).apply(CodeBase.from_files(files))

        memo = TransformMemo(path=tmp_path / "m")
        first = PatchSet(patches).apply(CodeBase.from_files(files),
                                        jobs=3, memo=memo)
        assert _texts(first) == _texts(cold)
        # worker outcomes were folded back into the parent memo...
        warm = PatchSet(patches).apply(CodeBase.from_files(files),
                                       jobs=3, memo=memo)
        assert _texts(warm) == _texts(cold)
        assert warm.stats.memo_hits == len(files) * len(patches)
        assert warm.stats.memo_misses == 0
        # ...and the disk tier carries them to a fresh process
        fresh = TransformMemo(path=tmp_path / "m")
        rewarm = PatchSet(patches).apply(CodeBase.from_files(files),
                                         jobs=3, memo=fresh)
        assert _texts(rewarm) == _texts(cold)
        assert rewarm.stats.memo_misses == 0

    def test_per_file_script_patches_are_never_memoized(self):
        scripted = ("@a@\nidentifier f;\n@@\nmarked(f);\n\n"
                    "@script:python s@\nf << a.f;\n@@\nprint(f)\n")
        patches = [SemanticPatch.from_string(scripted, name="scripted")]
        memo = TransformMemo()
        files = {"a.c": "void t(void) { marked(x); }\n"}
        for _ in range(2):
            PatchSet(patches).apply(CodeBase.from_files(files), memo=memo)
        assert memo.stats() == (0, 0)  # never consulted, never stored
        assert len(memo) == 0

    def test_prefilter_toggle_does_not_cross_contaminate(self):
        files = {"hit.c": HIT_TEXT}
        patches = _patches(RENAME_A)
        memo = TransformMemo()
        on = PatchSet(patches).apply(CodeBase.from_files(files),
                                     prefilter=True, memo=memo)
        off = PatchSet(patches).apply(CodeBase.from_files(files),
                                      prefilter=False, memo=memo)
        assert off.stats.memo_hits == 0  # different flags: a fresh session
        assert _texts(on) == _texts(off)

    def test_incremental_pipeline_falls_through_to_memo(self):
        from repro.engine.incremental import IncrementalPipeline

        files = {"hit.c": HIT_TEXT, "miss.c": MISS_TEXT}
        asts = [p.ast for p in _patches(RENAME_A, RENAME_B)]
        memo = TransformMemo()
        cache = TreeCache()
        cold = IncrementalPipeline(asts, tree_cache=cache,
                                   memo=memo).run(files)
        # an edited file cannot splice from the prior result, but its
        # *unchanged boundary content* can still hit the memo if seen before
        edited = dict(files, **{"miss.c": MISS_TEXT + "int more;\n"})
        warm = IncrementalPipeline(asts, tree_cache=cache, memo=memo).run(
            edited, since=cold)
        assert warm.files["hit.c"].text == cold.files["hit.c"].text
        assert warm.incremental.files_reused == 1  # splice path won
        assert warm.stats.memo_misses == 0  # edited miss.c is still gated


class TestServiceSharing:
    def test_one_memo_spans_workspaces(self):
        from repro.server.service import PatchService

        service = PatchService()
        files = {"dup.c": HIT_TEXT}
        spec = {"kind": "smpl", "name": "rename", "text": RENAME_A}
        for name in ("w1", "w2"):
            service.open_workspace(name)
            service.sync_files(name, files=dict(files))

        service.apply("w1", [spec])
        assert service.memo.stats() == (0, 1)
        # the second workspace holds identical content: pure memo hit
        payload = service.apply("w2", [spec], profile=True)
        assert service.memo.stats() == (1, 1)
        assert payload["files"]["dup.c"]["changed"]
        assert payload["profile"]["memo"]["hits"] == 1

    def test_stats_verb_reports_memo_counters(self):
        from repro.server.service import PatchService

        service = PatchService(memo_entries=7)
        payload = service.stats()
        assert payload["memo"]["max_entries"] == 7
        assert payload["memo"]["hits"] == 0
        assert payload["memo"]["path"] is None

    def test_service_memo_disk_tier(self, tmp_path):
        from repro.server.service import PatchService

        first = PatchService(memo_dir=str(tmp_path / "memo"))
        name = "w"
        first.open_workspace(name)
        first.sync_files(name, files={"a.c": HIT_TEXT})
        first.apply(name, [{"kind": "smpl", "name": "r", "text": RENAME_A}])
        assert first.memo.counters()["disk_stores"] >= 1

        restarted = PatchService(memo_dir=str(tmp_path / "memo"))
        restarted.open_workspace(name)
        restarted.sync_files(name, files={"a.c": HIT_TEXT})
        restarted.apply(name, [{"kind": "smpl", "name": "r",
                                "text": RENAME_A}])
        counters = restarted.memo.counters()
        assert counters["disk_hits"] >= 1 and counters["misses"] == 0


class TestDefaults:
    def test_default_bound_is_advertised(self):
        memo = TransformMemo()
        assert memo.max_entries == DEFAULT_MEMO_ENTRIES
        assert memo.path is None


class TestBlobTier:
    """The raw-text tier behind memo-aware delta sync: texts are
    remembered by content hash (memory LRU plus the on-disk tier) and
    recalled byte-identically; corruption degrades to a miss."""

    def test_store_and_recall_in_memory(self):
        memo = TransformMemo()
        sha = memo.store_text(HIT_TEXT)
        assert sha == content_sha1(HIT_TEXT)
        assert memo.recall_text(sha) == HIT_TEXT
        assert memo.recall_text(content_sha1("absent")) is None
        counters = memo.counters()
        assert counters["blob_stores"] == 1
        assert counters["blob_hits"] == 1 and counters["blob_misses"] == 1

    def test_disk_tier_survives_a_new_process_worth_of_state(self, tmp_path):
        first = TransformMemo(path=tmp_path)
        sha = first.store_text(HIT_TEXT)
        # a fresh memo over the same directory: memory is cold, disk answers
        second = TransformMemo(path=tmp_path)
        assert second.recall_text(sha) == HIT_TEXT
        assert second.counters()["blob_hits"] == 1

    def test_surrogateescape_texts_round_trip(self, tmp_path):
        tricky = "int x; /* \udce9 bad byte */\n"
        memo = TransformMemo(path=tmp_path)
        sha = memo.store_text(tricky)
        assert TransformMemo(path=tmp_path).recall_text(sha) == tricky

    def test_corrupt_blob_degrades_to_a_miss_and_unlinks(self, tmp_path):
        memo = TransformMemo(path=tmp_path)
        sha = memo.store_text(HIT_TEXT)
        blob = memo._blob_path(sha)
        with open(blob, "w") as handle:
            handle.write("tampered")
        cold = TransformMemo(path=tmp_path)
        assert cold.recall_text(sha) is None
        assert not pathlib.Path(blob).exists()
        assert cold.counters()["blob_misses"] == 1
        assert cold.counters()["disk_errors"] == 1

    def test_memory_lru_is_bounded(self):
        memo = TransformMemo(max_blob_entries=2)
        shas = [memo.store_text(f"int x{i};\n") for i in range(4)]
        assert memo.counters()["blob_entries"] == 2
        assert memo.recall_text(shas[0]) is None  # evicted, no disk tier


class TestPrune:
    """`prune` bounds the on-disk tier (entry files and blobs) by age
    and/or total size, oldest-mtime first, and reports what it did."""

    def _populate(self, tmp_path, count=4):
        memo = TransformMemo(path=tmp_path)
        for index in range(count):
            memo.store_text(f"void f{index}(void) {{}}\n")
        return memo

    def test_age_bound_removes_everything_expired(self, tmp_path):
        memo = self._populate(tmp_path)
        summary = memo.prune(max_age=0)
        assert summary["scanned"] == 4 and summary["removed"] == 4
        assert summary["removed_bytes"] == summary["scanned_bytes"] > 0
        assert memo.prune(max_age=0)["scanned"] == 0  # directory is empty

    def test_fresh_entries_survive_a_generous_age(self, tmp_path):
        memo = self._populate(tmp_path)
        summary = memo.prune(max_age=3600)
        assert summary["removed"] == 0 and summary["scanned"] == 4

    def test_size_bound_keeps_newest(self, tmp_path):
        memo = TransformMemo(path=tmp_path)
        old_sha = memo.store_text("void old_one(void) {}\n")
        # age the first blob so mtime ordering is deterministic
        os.utime(memo._blob_path(old_sha), (1, 1))
        new_sha = memo.store_text("void new_one(void) {}\n")
        keep = os.path.getsize(memo._blob_path(new_sha))
        summary = memo.prune(max_bytes=keep)
        assert summary["removed"] == 1
        cold = TransformMemo(path=tmp_path)
        assert cold.recall_text(old_sha) is None
        assert cold.recall_text(new_sha) is not None

    def test_prune_covers_entry_files_too(self, tmp_path):
        memo = TransformMemo(path=tmp_path)
        patches = _patches(RENAME_A)
        PatchSet(patches).apply(CodeBase.from_files({"a.c": HIT_TEXT}),
                                memo=memo)
        assert memo.counters()["disk_stores"] >= 1
        summary = memo.prune(max_age=0)
        assert summary["removed"] >= 1
        # a cold memo over the pruned directory re-computes from scratch
        cold = TransformMemo(path=tmp_path)
        PatchSet(_patches(RENAME_A)).apply(
            CodeBase.from_files({"a.c": HIT_TEXT}), memo=cold)
        assert cold.counters()["disk_hits"] == 0

    def test_prune_without_a_path_is_a_no_op(self):
        summary = TransformMemo().prune(max_age=0)
        assert summary == {"scanned": 0, "scanned_bytes": 0,
                           "removed": 0, "removed_bytes": 0}

    def test_prune_tolerates_files_vanishing_mid_walk(self, tmp_path):
        memo = self._populate(tmp_path)
        victim = memo._blob_path(memo.store_text("void gone(void) {}\n"))
        os.unlink(victim)
        assert memo.prune(max_age=0)["scanned"] == 4
