"""Cookbook tests: CPU-oriented use cases (instrumentation, variants,
multiversioning, bloat removal, unrolling, mdspan, STL, workaround, AoS→SoA)."""

import re

import pytest

from repro import CodeBase
from repro.cookbook import (
    aos_soa, bloat_removal, compiler_workaround, declare_variant,
    instrumentation, mdspan, multiversioning, stl_modernize, unrolling,
)
from repro.workloads import (
    gadget, librsb_like, multiversion_app, openmp_kernels, rawloops, unrolled,
)


class TestInstrumentation:
    def test_braced_regions_instrumented(self, omp_region_code):
        result = instrumentation.likwid_patch().apply_to_source(omp_region_code)
        assert "#include <likwid-marker.h>" in result.text
        assert result.text.count("LIKWID_MARKER_START(__func__);") == 1
        assert result.text.count("LIKWID_MARKER_STOP(__func__);") == 1
        # the unbraced '#pragma omp parallel for' loop must not be touched
        assert "scale" in result.text

    def test_marker_api_selection(self, omp_region_code):
        result = instrumentation.marker_patch(api="caliper").apply_to_source(omp_region_code)
        assert "#include <caliper/cali.h>" in result.text
        assert "CALI_MARK_BEGIN(__func__);" in result.text

    def test_unknown_api_rejected(self):
        with pytest.raises(ValueError):
            instrumentation.marker_patch(api="nonexistent")

    def test_workload_coverage_matches_ground_truth(self):
        codebase = openmp_kernels.generate(n_files=2, kernels_per_file=2,
                                           regions_per_file=3, seed=7)
        expected = openmp_kernels.braced_region_count(codebase)
        result = instrumentation.likwid_patch().apply(codebase)
        started = sum(f.text.count("LIKWID_MARKER_START") for f in result)
        assert started == expected > 0

    def test_removal_round_trip(self, omp_region_code):
        instrumented = instrumentation.likwid_patch().apply_to_source(omp_region_code).text
        restored = instrumentation.removal_patch().apply_to_source(instrumented).text
        assert "LIKWID" not in restored
        assert "likwid-marker.h" not in restored


class TestDeclareVariant:
    def test_clones_and_pragmas_inserted(self):
        code = "double norm_kernel(const double *x, int n) {\n    return x[0] * n;\n}\n"
        result = declare_variant.declare_variant_patch().apply_to_source(code)
        assert "avx512_norm_kernel" in result.text
        assert "avx10_norm_kernel" in result.text
        assert result.text.count("#pragma omp declare variant") == 2
        # base function untouched and still last
        assert result.text.rstrip().endswith("}")

    def test_only_matching_functions_cloned(self):
        codebase = openmp_kernels.generate(n_files=1, kernels_per_file=3,
                                           regions_per_file=1, seed=2)
        result = declare_variant.declare_variant_patch().apply(codebase)
        text = "\n".join(f.text for f in result)
        assert "avx512_relax_region" not in text
        assert "avx512_axpy_kernel_0" in text or "avx512_stencil_kernel_1" in text

    def test_custom_variants(self):
        spec = (declare_variant.VariantSpec(prefix="sve_", isa="arm-sve"),)
        result = declare_variant.declare_variant_patch(variants=spec).apply_to_source(
            "int my_kernel(int x) { return x; }\n")
        assert "sve_my_kernel" in result.text
        assert 'isa("arm-sve")' in result.text


class TestMultiversioningAndBloat:
    def test_target_clones_attribute_added(self):
        result = multiversioning.target_clones_patch().apply_to_source(
            "double dot_kernel(const double *a, int n) { return a[0] * n; }\n")
        assert '__attribute__((target_clones("default","avx2","avx512")))' in result.text

    def test_clone_with_target_attributes(self):
        result = multiversioning.clone_with_target_attributes().apply_to_source(
            "double dot_kernel(const double *a, int n) { return a[0] * n; }\n")
        assert result.text.count("__attribute__((target(") == 3  # avx2, avx512, default

    def test_match_architecture_specific(self):
        code = ('__attribute__((target("avx512")))\nint f(int x) {\n    return x;\n}\n')
        result = multiversioning.match_architecture_specific().apply_to_source(code)
        assert "avx512-specific code only" in result.text

    def test_bloat_removal_on_workload(self):
        codebase = multiversion_app.generate(n_files=2, clone_sets_per_file=3, seed=4)
        before_clones = multiversion_app.clone_count(codebase)
        before_defaults = multiversion_app.default_attr_count(codebase)
        transformed = bloat_removal.remove_obsolete_clones().transform(codebase)
        assert multiversion_app.clone_count(transformed) == 0
        assert before_clones > 0
        # the default attribute survives only on functions that had no clones
        assert multiversion_app.default_attr_count(transformed) == before_defaults - 6

    def test_remove_pragma_guarded_code(self):
        code = "void f(void) {\n#pragma oldtool trace(on)\n    work();\n}\n"
        result = bloat_removal.remove_pragma_guarded_code("oldtool").apply_to_source(code)
        assert "oldtool" not in result.text
        assert "work();" in result.text


class TestUnrolling:
    def test_p0_rerolls_and_inserts_pragma(self, unrolled_code):
        result = unrolling.reroll_patch_p0().apply_to_source(unrolled_code)
        assert "#pragma omp unroll partial(4)" in result.text
        assert "idx+1" not in result.text
        assert "++idx" in result.text and "idx < n" in result.text

    def test_p1_r1_equivalent_result_on_true_unroll(self, unrolled_code):
        p0 = unrolling.reroll_patch_p0().apply_to_source(unrolled_code).text
        p1r1 = unrolling.reroll_patch_p1_r1().apply_to_source(unrolled_code).text
        assert p0.split() == p1r1.split()

    def test_checked_strategy_leaves_impostors_alone(self):
        codebase = unrolled.generate(n_files=1, unrolled_per_file=2, impostors_per_file=2,
                                     plain_per_file=1, seed=9)
        transformed = unrolling.reroll_patch(strategy="checked").transform(codebase)
        text = "\n".join(transformed.files.values())
        # genuine unrolls rerolled ...
        assert text.count("#pragma omp unroll partial(4)") == 2
        # ... impostors byte-identical
        for name, original in codebase.items():
            for chunk in original.split("void ")[1:]:
                if chunk.startswith("tail_fixup_"):
                    assert "void " + chunk in transformed[name]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            unrolling.reroll_patch(strategy="yolo")

    def test_other_factor(self):
        code = ("void f(double *y, const double *x, int n) {\n"
                "    for (int i=0; i+2-1 < n; i+=2)\n    {\n"
                "        y[i+0] = x[i+0];\n        y[i+1] = x[i+1];\n    }\n}\n")
        result = unrolling.reroll_patch_p0(factor=2).apply_to_source(code)
        assert "#pragma omp unroll partial(2)" in result.text
        assert "y[i+1]" not in result.text


class TestMdspan:
    def test_paper_rule_only_touches_named_array(self):
        code = ("void f(int n) { b[i][j][k] = a[i][j][k] + a[i+1][j][k]; }\n")
        result = mdspan.multiindex_patch().apply_to_source(code, "m.cpp")
        assert "a[i, j, k]" in result.text and "a[i+1, j, k]" in result.text
        assert "b[i][j][k]" in result.text  # not named in the rule

    def test_derived_from_codebase(self):
        codebase = gadget.generate(n_files=1, loops_per_file=1, grid_kernels_per_file=2, seed=0)
        arrays = mdspan.arrays_of_rank(codebase, min_rank=3)
        assert set(arrays) == {"rho", "phi"}
        transformed = mdspan.multiindex_patch_from_codebase(codebase).transform(codebase)
        assert gadget.chained_3d_subscript_count(transformed) == 0

    def test_fallback_when_no_arrays(self):
        empty = CodeBase.from_files({"x.c": "int f(void) { return 0; }\n"})
        patch = mdspan.multiindex_patch_from_codebase(empty)
        assert patch.rule_names  # falls back to the paper's literal rule


class TestStlAndWorkaround:
    def test_raw_loop_rewritten(self):
        codebase = rawloops.generate(n_files=1, searches_per_file=4, counters_per_file=2, seed=3)
        expected = rawloops.raw_search_count(codebase)
        transformed = stl_modernize.raw_loop_to_find_patch().transform(codebase)
        text = "\n".join(transformed.files.values())
        assert text.count("find(begin(") == expected
        assert "#include <algorithm>" in text
        # counting loops (no break) must be preserved
        assert text.count("count = count + 1") == rawloops.preserved_loop_count(codebase)

    def test_qualified_std_variant(self):
        code = ("#include <iostream>\n#include <vector>\n"
                "bool has(std::vector<int> &v) {\n    bool found = false;\n"
                "    for ( int &e : v )\n      if ( e == 7 )\n      {\n"
                "        found = true;\n        break;\n      }\n    return found;\n}\n")
        result = stl_modernize.raw_loop_to_find_patch(qualify_std=True).apply_to_source(
            code, "q.cpp")
        assert "std::find(std::begin(v),std::end(v),7)" in result.text

    def test_workaround_targets_only_affected_kernels(self):
        codebase = librsb_like.generate(n_files=2)
        affected = librsb_like.affected_kernel_count(codebase)
        total = librsb_like.total_kernel_count(codebase)
        assert 0 < affected < total
        result = compiler_workaround.gcc_workaround_patch().apply(codebase)
        text = "\n".join(f.text for f in result)
        assert text.count("#pragma GCC push_options") == affected
        assert text.count("#pragma GCC pop_options") == affected

    def test_workaround_paper_numbers(self):
        """The paper says the patch impacts 'a dozen functions among a few
        hundred'; the synthetic kernel family reproduces those proportions."""
        codebase = librsb_like.generate(n_files=2)
        assert librsb_like.affected_kernel_count(codebase) == 12
        assert librsb_like.total_kernel_count(codebase) == 288


class TestAosSoa:
    def test_spec_derivation(self):
        codebase = gadget.generate(n_files=1, loops_per_file=2, seed=1)
        spec = aos_soa.derive_spec(codebase, struct_name="particle")
        assert spec.array_name == "P"
        names = {f.name for f in spec.fields}
        assert {"pos", "vel", "mass"} <= names
        assert [f.inner_dim for f in spec.fields if f.name == "pos"] == [3]

    def test_all_accesses_rewritten(self):
        codebase = gadget.generate(n_files=2, loops_per_file=4, seed=1)
        before = gadget.aos_access_count(codebase)
        patch = aos_soa.aos_to_soa_patch_from_codebase(codebase, struct_name="particle")
        transformed = patch.transform(codebase)
        assert before > 20
        assert gadget.aos_access_count(transformed) == 0
        assert "double P_mass[NPART];" in transformed["globals.c"]
        assert "extern double P_mass[NPART];" in transformed["particles.h"]

    def test_keep_fields_stay_aos(self):
        codebase = gadget.generate(n_files=1, loops_per_file=3, seed=6)
        spec = aos_soa.derive_spec(codebase, struct_name="particle", keep_fields=("type",))
        transformed = aos_soa.aos_to_soa_patch(spec).transform(codebase)
        text = "\n".join(transformed.files.values())
        assert "P_type" not in text
        assert "struct particle P[NPART];" in transformed["globals.c"]

    def test_reverse_patch_round_trips_accesses(self):
        codebase = gadget.generate(n_files=1, loops_per_file=3, seed=2)
        spec = aos_soa.derive_spec(codebase, struct_name="particle")
        forward = aos_soa.aos_to_soa_patch(spec)
        backward = aos_soa.reverse_patch(spec)
        soa = forward.transform(codebase)
        back = backward.transform(soa)
        assert gadget.aos_access_count(back) == gadget.aos_access_count(codebase)
