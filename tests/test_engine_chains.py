"""Tests for environment-chain candidates in rule dependencies.

``FileSession._base_environments`` attempts a rule once per environment
exported by the *latest* rule in its inheritance chain — and rules named in
``depends on`` count as chain candidates too, so a script rule that filtered
an earlier rule's environments (``cocci.include_match(False)``) restricts the
rules downstream of it.  That dep-candidate path had no direct coverage.
"""

from repro import apply_patch
from repro.engine import Engine
from repro.api import SemanticPatch


FILTER_CHAIN = """\
@a@
identifier f;
@@
marked(f);

@script:python s depends on a@
f << a.f;
@@
if f == "bad":
    cocci.include_match(False)

@b depends on s@
identifier a.f;
@@
- marked(f);
+ kept(f);
"""

CODE = "void t(void) { marked(good); marked(bad); }\n"


class TestDependencyChainFiltering:
    def test_script_filter_restricts_downstream_rule(self):
        """'b' depends on 's', so it must run only under the environments the
        script kept — 'bad' survives untouched."""
        result = apply_patch(FILTER_CHAIN, CODE)
        assert "kept(good);" in result.text
        assert "marked(bad);" in result.text
        assert result.matches_of("b") == 1

    def test_without_filter_both_environments_flow_through(self):
        patch = FILTER_CHAIN.replace('if f == "bad":\n    cocci.include_match(False)',
                                     "pass")
        result = apply_patch(patch, CODE)
        assert "kept(good);" in result.text and "kept(bad);" in result.text
        assert result.matches_of("b") == 2

    def test_script_dropping_every_environment_blocks_dependent_rule(self):
        patch = FILTER_CHAIN.replace('if f == "bad":\n    cocci.include_match(False)',
                                     "cocci.include_match(False)")
        result = apply_patch(patch, CODE)
        # 's' exported nothing, so it never counts as applied and 'b' must not run
        assert "kept(" not in result.text
        assert result.matches_of("b") == 0

    def test_depends_on_without_inheritance_uses_plain_environment(self):
        """A dependent rule with no inherited metavariables still runs once
        per export of its dependency — but binds its own metavariables."""
        patch = ("@first@\nidentifier f;\n@@\nmarked(f);\n\n"
                 "@second depends on first@ @@\n- also_present();\n")
        code = "void t(void) { marked(x); also_present(); }\n"
        result = apply_patch(patch, code)
        assert "also_present" not in result.text

    def test_chain_preserved_through_driver_prefilter(self):
        """The chain semantics must be identical when the driver gates rules:
        gating 'b' in a file without 'marked' must not disturb other files."""
        patch = SemanticPatch.from_string(FILTER_CHAIN)
        files = {"has.c": CODE, "hasnot.c": "void u(void) { unrelated(); }\n"}
        filtered = patch.apply(dict(files), prefilter=True)
        baseline = Engine(patch.ast, options=patch.options).apply_to_files(files)
        for name in files:
            assert filtered[name].text == baseline[name].text
            assert filtered[name].rule_reports == baseline[name].rule_reports
