"""Machine-patch frontend suites: parsers, locators, differential oracle.

Four tiers, per ISSUE acceptance:

* **parser** — each format (JSON ops / 'ap' / SEARCH-REPLACE blocks) parses
  its aliases and rejects malformed input with a :class:`FrontendParseError`
  carrying a line number, never a traceback out of the engine;
* **locator** — whitespace-resilient matching, ambiguity detection,
  occurrence/anchor disambiguation, ``old_hash`` verification, and the
  all-or-nothing guarantee (a failed op leaves the file byte-identical);
* **differential** — on a well-formed corpus every frontend's engine
  application is byte-identical to the exact search/replace oracle
  (:class:`repro.baselines.textual.ReferencePatcher`); on a reformatted
  corpus the oracle goes blind while the frontends still apply;
* **integration** — frontend patches flow through prefilter on/off, the
  transform memo, incremental ``since=`` splicing, multi-process workers,
  mixed SMPL+frontend pipelines, ``PatchSet.from_any``, the CLI's
  ``--patch-file``, and the daemon (inline specs and parsed patches).
"""

import json

import pytest

from frontend_corpus import (CORPUS, PATCH_FILENAMES, PATCH_TEXTS,
                             REFERENCE_PAIRS, codebase, frontend_patch,
                             reformatted_codebase)
from repro import (CodeBase, FrontendParseError, PatchSet, SemanticPatch)
from repro.baselines.textual import ReferencePatcher
from repro.cli.spatch import main as spatch_main
from repro.engine.memo import TransformMemo
from repro.errors import patch_error_line
from repro.frontends import (WIRE_KINDS, detect_format, parse_patch_text,
                             sha256_hex)
from repro.frontends.core import interior_words
from repro.server.client import RemoteClient, RemoteError
from repro.server.daemon import PatchDaemon
from repro.server.protocol import result_payload
from repro.server.service import PatchService

FORMATS = list(WIRE_KINDS)


def apply_ops(ops, files, **kwargs):
    """One jsonops patch over a dict codebase; returns the PatchResult."""
    patch = SemanticPatch.from_text(json.dumps(ops), format="jsonops")
    return patch.apply(CodeBase.from_files(files), **kwargs)


def diag_messages(result, name):
    return [str(d) for d in result.files[name].diagnostics]


# ---------------------------------------------------------------------------
# format detection
# ---------------------------------------------------------------------------

class TestDetectFormat:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_suffix_hint_wins(self, fmt):
        assert detect_format(PATCH_TEXTS[fmt], PATCH_FILENAMES[fmt]) == fmt

    @pytest.mark.parametrize("name", ["p.cocci", "p.smpl"])
    def test_smpl_suffixes(self, name):
        assert detect_format("@r@ @@\n- old();\n", name) == "smpl"

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_content_shape_without_name(self, fmt):
        assert detect_format(PATCH_TEXTS[fmt]) == fmt

    def test_smpl_content_shape(self):
        assert detect_format("@r@ @@\n- old();\n+ new_call();\n") == "smpl"

    def test_undetectable_raises(self):
        with pytest.raises(FrontendParseError):
            detect_format("just some prose, nothing machine-shaped\n")


# ---------------------------------------------------------------------------
# parsers
# ---------------------------------------------------------------------------

class TestJsonOpsParser:
    def test_basic_and_rule_names(self):
        ast = parse_patch_text(PATCH_TEXTS["jsonops"], format="jsonops")
        rules = ast.patch_rules()
        assert [r.name for r in rules] == ["op1", "op2"]
        assert all(r.is_textual for r in rules)
        assert ast.format == "jsonops"
        assert ast.source_text == PATCH_TEXTS["jsonops"]

    def test_key_aliases(self):
        text = json.dumps([{"op": "replace", "old": "a();", "new": "b();",
                            "path": "x.c", "nth": 2}])
        rule = parse_patch_text(text, format="jsonops").patch_rules()[0]
        assert rule.op.action == "replace"
        assert rule.op.search == "a();"
        assert rule.op.replacement == "b();"
        assert rule.op.file == "x.c"
        assert rule.op.occurrence == 2

    def test_operations_wrapper(self):
        text = json.dumps({"operations": [
            {"action": "delete", "search": "a();"}]})
        assert len(parse_patch_text(text, format="jsonops").patch_rules()) == 1

    def test_insert_anchor_shorthand(self):
        text = json.dumps([{"action": "insert_after", "anchor": "a();",
                            "replace": "b();"}])
        rule = parse_patch_text(text, format="jsonops").patch_rules()[0]
        assert rule.op.search == "a();"

    def test_bad_json_reports_line(self):
        with pytest.raises(FrontendParseError) as exc:
            parse_patch_text("[\n {\"action\": }\n]", format="jsonops")
        assert exc.value.line == 2
        assert "line 2" in str(exc.value)

    @pytest.mark.parametrize("ops, needle", [
        ([{"action": "replace", "search": "a", "replace": "b",
           "frobnicate": 1}], "frobnicate"),
        ([{"action": "transmogrify", "search": "a"}], "unknown action"),
        ([{"action": "replace", "replace": "b"}], "search"),
        ([{"action": "rewrite_file", "replace": "b"}], "file"),
        ([{"action": "replace", "search": "a", "replace": "b",
           "old_hash": "xyz"}], "old_hash"),
        ([{"action": "replace", "search": "a", "replace": "b",
           "occurrence": -1}], "occurrence"),
        ([{"action": "replace", "search": "a", "replace": "b",
           "occurrence": "first"}], "occurrence"),
        (["not-an-object"], "object"),
        ([], "empty"),
    ])
    def test_malformed_operations(self, ops, needle):
        with pytest.raises(FrontendParseError) as exc:
            parse_patch_text(json.dumps(ops), format="jsonops")
        assert needle in str(exc.value)

    def test_scalar_top_level_rejected(self):
        with pytest.raises(FrontendParseError):
            parse_patch_text('"just a string"', format="jsonops")


class TestApParser:
    def test_basic_and_rule_names(self):
        ast = parse_patch_text(PATCH_TEXTS["ap"], format="ap")
        rules = ast.patch_rules()
        assert [r.name for r in rules] == ["change1", "change2"]
        assert rules[0].op.anchor == "int main(void)\n"
        assert rules[0].op.search == "double acc = 0.0;\n"
        assert rules[1].op.file == "beta.c"
        assert rules[1].op.action == "insert_after"

    def test_field_aliases_and_quotes(self):
        text = ("changes:\n"
                "  - action: replace\n"
                "    find: \"a();\"\n"
                "    replacement: 'b();'\n"
                "    occurrence: 2\n")
        rule = parse_patch_text(text, format="ap").patch_rules()[0]
        assert rule.op.search == "a();"
        assert rule.op.replacement == "b();"
        assert rule.op.occurrence == 2

    def test_block_scalar_chomping(self):
        text = ("changes:\n"
                "  - action: delete\n"
                "    snippet: |-\n"
                "      a();\n")
        rule = parse_patch_text(text, format="ap").patch_rules()[0]
        assert rule.op.search == "a();"  # |- strips the final newline

    def test_comments_and_preamble_tolerated(self):
        text = ("# generated by a tool\n"
                "version: 1\n"
                "description: demo\n"
                "changes:\n"
                "  # first change\n"
                "  - action: delete\n"
                "    snippet: 'a();'\n")
        assert len(parse_patch_text(text, format="ap").patch_rules()) == 1

    @pytest.mark.parametrize("text, needle", [
        ("changes:\n", "change"),
        ("changes:\n  - action: delete\n    wibble: 'x'\n", "wibble"),
        ("changes:\n  - snippet: 'a();'\n", "action"),
        ("changes:\n  - action: delete\n    snippet: 'a'\n"
         "    snippet: 'b'\n", "snippet"),
    ])
    def test_malformed_documents(self, text, needle):
        with pytest.raises(FrontendParseError) as exc:
            parse_patch_text(text, format="ap")
        assert needle in str(exc.value)

    def test_error_carries_line_number(self):
        text = "changes:\n  - action: delete\n    wibble: 'x'\n"
        with pytest.raises(FrontendParseError) as exc:
            parse_patch_text(text, format="ap")
        assert exc.value.line == 3


class TestBlocksParser:
    def test_basic_and_sticky_file_header(self):
        ast = parse_patch_text(PATCH_TEXTS["blocks"], format="blocks")
        rules = ast.patch_rules()
        assert [r.name for r in rules] == ["block1", "block2"]
        # the File: header sticks to every following block
        assert rules[0].op.file == "alpha.c"
        assert rules[1].op.file == "alpha.c"

    def test_empty_replace_is_delete(self):
        text = ("<<<<<<< SEARCH\n"
                "a();\n"
                "=======\n"
                ">>>>>>> REPLACE\n")
        rule = parse_patch_text(text, format="blocks").patch_rules()[0]
        assert rule.op.action == "delete"

    def test_markdown_file_header(self):
        text = ("### File: sub/dir/x.c\n"
                "<<<<<<< SEARCH\n"
                "a();\n"
                "=======\n"
                "b();\n"
                ">>>>>>> REPLACE\n")
        rule = parse_patch_text(text, format="blocks").patch_rules()[0]
        assert rule.op.file == "sub/dir/x.c"

    @pytest.mark.parametrize("text, needle", [
        ("<<<<<<< SEARCH\n=======\nb();\n>>>>>>> REPLACE\n", "empty"),
        ("<<<<<<< SEARCH\na();\n=======\nb();\n", "REPLACE terminator"),
        ("=======\n", "outside a SEARCH block"),
        ("prose only, no blocks\n", "no SEARCH"),
        ("<<<<<<< SEARCH\na();\n>>>>>>> REPLACE\n", "divider"),
    ])
    def test_malformed_blocks(self, text, needle):
        with pytest.raises(FrontendParseError) as exc:
            parse_patch_text(text, format="blocks")
        assert needle in str(exc.value)


# ---------------------------------------------------------------------------
# locator semantics
# ---------------------------------------------------------------------------

SRC = ("int f(void) {\n"
       "    call(1);\n"
       "    call(2);\n"
       "    return 0;\n"
       "}\n")


class TestLocator:
    def test_ambiguous_snippet_fails_closed(self):
        result = apply_ops([{"action": "replace", "search": "call(",
                             "replace": "invoke("}], {"a.c": SRC})
        assert result.files["a.c"].text == SRC
        assert any("ambiguous snippet" in m for m in diag_messages(result, "a.c"))

    def test_occurrence_disambiguates(self):
        result = apply_ops([{"action": "replace", "search": "call(",
                             "replace": "invoke(", "occurrence": 2}],
                           {"a.c": SRC})
        assert "call(1);" in result.files["a.c"].text
        assert "invoke(2);" in result.files["a.c"].text

    def test_occurrence_out_of_range_fails_closed(self):
        result = apply_ops([{"action": "replace", "search": "call(",
                             "replace": "invoke(", "occurrence": 9}],
                           {"a.c": SRC})
        assert result.files["a.c"].text == SRC
        assert any("out of range" in m for m in diag_messages(result, "a.c"))

    def test_resilient_match_needs_word_boundaries(self):
        # " turn = 0;" fails exactly and must NOT locate inside the larger
        # identifier "returning" when matched resiliently — the leading
        # whitespace demands a word boundary before "turn"
        src = "int f(void) {\n    returning = 0;\n}\n"
        result = apply_ops([{"action": "replace", "search": " turn = 0;",
                             "replace": " turn = 1;", "file": "a.c"}],
                           {"a.c": src})
        assert result.files["a.c"].text == src
        assert any("snippet not found" in m for m in diag_messages(result, "a.c"))
        # positive control: the full identifier locates despite the spacing
        result = apply_ops([{"action": "replace",
                             "search": " returning  =  0;",
                             "replace": " returning = 1;", "file": "a.c"}],
                           {"a.c": src})
        assert "returning = 1;" in result.files["a.c"].text

    def test_resilient_match_spans_whitespace(self):
        src = "int  x =\n    1;\n"
        result = apply_ops([{"action": "replace", "search": "int x = 1;",
                             "replace": "int x = 2;"}], {"a.c": src})
        assert result.files["a.c"].text == "int x = 2;\n"

    def test_anchor_scopes_the_search(self):
        result = apply_ops([{"action": "replace", "search": "call(2);",
                             "replace": "invoke(2);", "anchor": "call(1);"}],
                           {"a.c": SRC})
        assert "invoke(2);" in result.files["a.c"].text

    def test_ambiguous_anchor_fails_closed(self):
        result = apply_ops([{"action": "replace", "search": "return 0;",
                             "replace": "return 1;", "anchor": "call("}],
                           {"a.c": SRC})
        assert result.files["a.c"].text == SRC
        assert any("ambiguous anchor" in m for m in diag_messages(result, "a.c"))

    def test_unscoped_miss_is_silent_no_match(self):
        result = apply_ops([{"action": "replace", "search": "absent();",
                             "replace": "x();"}], {"a.c": SRC})
        assert result.files["a.c"].text == SRC
        assert diag_messages(result, "a.c") == []
        assert result.files["a.c"].total_matches == 0

    def test_file_scoped_miss_is_an_error(self):
        result = apply_ops([{"action": "replace", "search": "absent();",
                             "replace": "x();", "file": "a.c"}], {"a.c": SRC})
        assert result.files["a.c"].text == SRC
        assert any("snippet not found" in m for m in diag_messages(result, "a.c"))

    def test_old_hash_accepts_exact_span(self):
        ok = sha256_hex("call(1);")[:16]
        result = apply_ops([{"action": "replace", "search": "call(1);",
                             "replace": "invoke(1);", "old_hash": ok}],
                           {"a.c": SRC})
        assert "invoke(1);" in result.files["a.c"].text

    def test_stale_old_hash_fails_closed(self):
        stale = sha256_hex("something else")[:16]
        result = apply_ops([{"action": "replace", "search": "call(1);",
                             "replace": "invoke(1);", "old_hash": stale}],
                           {"a.c": SRC})
        assert result.files["a.c"].text == SRC
        assert any("stale old_hash" in m for m in diag_messages(result, "a.c"))

    def test_delete_removes_whole_lines(self):
        result = apply_ops([{"action": "delete", "search": "call(1);"}],
                           {"a.c": SRC})
        assert result.files["a.c"].text == SRC.replace("    call(1);\n", "")

    def test_insert_after_adopts_indentation(self):
        result = apply_ops([{"action": "insert_after", "search": "call(2);",
                             "replace": "call(3);"}], {"a.c": SRC})
        assert "    call(2);\n    call(3);\n" in result.files["a.c"].text

    def test_insert_before(self):
        result = apply_ops([{"action": "insert_before", "search": "call(1);",
                             "replace": "setup();"}], {"a.c": SRC})
        assert "    setup();\n    call(1);\n" in result.files["a.c"].text

    def test_rewrite_file_with_hash(self):
        new = "int f(void) { return 1; }\n"
        result = apply_ops([{"action": "rewrite_file", "file": "a.c",
                             "replace": new,
                             "old_hash": sha256_hex(SRC)[:16]}],
                           {"a.c": SRC, "b.c": "int g;\n"})
        assert result.files["a.c"].text == new
        assert result.files["b.c"].text == "int g;\n"

    def test_rewrite_file_stale_hash_fails_closed(self):
        result = apply_ops([{"action": "rewrite_file", "file": "a.c",
                             "replace": "x\n",
                             "old_hash": sha256_hex("other")[:16]}],
                           {"a.c": SRC})
        assert result.files["a.c"].text == SRC
        assert any("stale old_hash" in m for m in diag_messages(result, "a.c"))


class TestAllOrNothing:
    OPS = [
        {"action": "replace", "search": "call(1);", "replace": "invoke(1);"},
        {"action": "replace", "search": "call(2);", "replace": "invoke(2);",
         "old_hash": sha256_hex("stale text")[:16]},
    ]

    def test_failed_op_reverts_the_whole_file(self):
        result = apply_ops(self.OPS, {"a.c": SRC})
        file_result = result.files["a.c"]
        # op1 succeeded, op2 failed: the file must be byte-identical, with
        # no surviving rule reports — only the error diagnostic remains
        assert file_result.text == SRC
        assert not file_result.changed
        assert file_result.rule_reports == []
        assert any("stale old_hash" in str(d) for d in file_result.diagnostics)

    def test_other_files_still_apply(self):
        result = apply_ops(self.OPS, {"a.c": SRC, "b.c": "call(1);\n"})
        assert result.files["a.c"].text == SRC
        assert result.files["b.c"].text == "invoke(1);\n"


# ---------------------------------------------------------------------------
# differential vs the exact-replacement oracle
# ---------------------------------------------------------------------------

class TestDifferential:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_byte_identical_on_well_formed_corpus(self, fmt):
        engine = PatchSet([frontend_patch(fmt)]).apply(codebase())
        oracle = ReferencePatcher(REFERENCE_PAIRS[fmt]).run(codebase())
        for name in CORPUS:
            assert engine.files[name].text == oracle.text(name), (fmt, name)
        assert oracle.replacements == len(REFERENCE_PAIRS[fmt])

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_changes_are_real(self, fmt):
        engine = PatchSet([frontend_patch(fmt)]).apply(codebase())
        assert any(f.changed for f in engine.files.values())

    def test_oracle_goes_blind_on_reformatted_corpus(self):
        oracle = ReferencePatcher(REFERENCE_PAIRS["jsonops"]) \
            .run(reformatted_codebase())
        assert oracle.replacements == 0

    def test_frontends_survive_reformatting(self):
        # ap and blocks locate resiliently where the oracle found nothing
        res = PatchSet([frontend_patch("ap")]).apply(reformatted_codebase())
        assert "double acc = 1.0;" in res.files["alpha.c"].text
        assert "#include <string.h>" in res.files["beta.c"].text
        res = PatchSet([frontend_patch("blocks")]).apply(reformatted_codebase())
        assert "sum = %f" in res.files["alpha.c"].text
        assert "2.125" in res.files["alpha.c"].text

    def test_old_hash_is_stricter_than_resilience(self):
        # the hashed jsonops op *finds* the reformatted snippet but the
        # hash no longer matches the located bytes: fail closed, loudly
        res = PatchSet([frontend_patch("jsonops")]) \
            .apply(reformatted_codebase())
        assert res.files["alpha.c"].text == reformatted_codebase()["alpha.c"]
        assert any("stale old_hash" in str(d)
                   for d in res.files["alpha.c"].diagnostics)
        # the unhashed, file-scoped op still applies in its own file
        assert "(i * i) + 1" in res.files["beta.c"].text


# ---------------------------------------------------------------------------
# engine integration: prefilter, memo, incremental, workers, mixed pipelines
# ---------------------------------------------------------------------------

class TestEngineIntegration:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_prefilter_parity(self, fmt):
        on = PatchSet([frontend_patch(fmt)]).apply(codebase(), prefilter=True)
        off = PatchSet([frontend_patch(fmt)]).apply(codebase(),
                                                    prefilter=False)
        for name in CORPUS:
            assert on.files[name].text == off.files[name].text
            assert diag_messages(on, name) == diag_messages(off, name)

    def test_prefilter_never_gates_file_scoped_errors(self):
        # a file-scoped miss must diagnose identically with the prefilter
        # on — gating would silently swallow the error
        ops = [{"action": "replace", "search": "nowhere_to_be_found();",
                "replace": "x();", "file": "alpha.c"}]
        on = apply_ops(ops, dict(CORPUS), prefilter=True)
        off = apply_ops(ops, dict(CORPUS), prefilter=False)
        assert diag_messages(on, "alpha.c") == diag_messages(off, "alpha.c")
        assert any("snippet not found" in m
                   for m in diag_messages(on, "alpha.c"))

    def test_interior_words_exclude_edge_fragments(self):
        # edge words may be fragments of larger identifiers in the target,
        # so only interior words are sound prefilter requirements
        words = interior_words("acc += legacy_scale((double) i);")
        assert {"legacy_scale", "double"} <= words
        assert "acc" not in words  # first word: an edge fragment risk

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_parallel_workers_parity(self, fmt):
        serial = PatchSet([frontend_patch(fmt)]).apply(codebase())
        parallel = PatchSet([frontend_patch(fmt)]).apply(codebase(), jobs=2)
        for name in CORPUS:
            assert serial.files[name].text == parallel.files[name].text

    def test_memo_replays_byte_identically(self):
        memo = TransformMemo()
        patch = frontend_patch("blocks")
        first = PatchSet([patch]).apply(codebase(), memo=memo)
        second = PatchSet([patch]).apply(codebase(), memo=memo)
        assert memo.counters()["hits"] > 0
        for name in CORPUS:
            assert first.files[name].text == second.files[name].text

    def test_incremental_splice_parity(self):
        patch = frontend_patch("jsonops")
        base = PatchSet([patch]).apply(codebase())
        edited = dict(CORPUS)
        edited["alpha.c"] += "/* trailing edit */\n"
        warm = PatchSet([patch]).apply(CodeBase.from_files(edited),
                                       since=base)
        cold = PatchSet([patch]).apply(CodeBase.from_files(edited))
        assert warm.incremental.files_reused == 1
        for name in edited:
            assert warm.files[name].text == cold.files[name].text

    def test_mixed_smpl_and_frontend_pipeline_runs_in_order(self):
        smpl = SemanticPatch.from_string(
            "@r@ @@\n- old();\n+ new_call();\n", name="rename.cocci")
        follow = SemanticPatch.from_text(json.dumps([
            {"action": "replace", "search": "new_call();",
             "replace": "new_call(1);"}]), format="jsonops", name="ops.json")
        result = PatchSet([smpl, follow]).apply(
            {"a.c": "void f(void) { old(); }\n"})
        # the frontend op matches text the SMPL patch introduced, proving
        # the two stages interleave in declaration order
        assert result.files["a.c"].text == "void f(void) { new_call(1); }\n"


# ---------------------------------------------------------------------------
# PatchSet.from_any
# ---------------------------------------------------------------------------

class TestFromAny:
    def test_mixed_sources(self, tmp_path):
        # blocks goes first: jsonops and blocks both rewrite the same
        # return line, so the later jsonops op simply no-matches there
        # while its beta.c op still applies
        blocks = tmp_path / "edit.blocks"
        blocks.write_text(PATCH_TEXTS["blocks"])
        ps = PatchSet.from_any([
            str(blocks),                               # path to a file
            PATCH_TEXTS["ap"],                         # inline text (has \n)
            frontend_patch("jsonops"),                 # parsed patch
        ])
        assert len(ps.patches) == 3
        result = ps.apply(codebase())
        assert "sum = %f" in result.files["alpha.c"].text   # blocks
        assert "2.125" in result.files["alpha.c"].text      # blocks
        assert "acc = 1.0" in result.files["alpha.c"].text  # ap
        assert "(i * i) + 1" in result.files["beta.c"].text  # jsonops

    def test_single_source(self):
        ps = PatchSet.from_any(PATCH_TEXTS["blocks"])
        assert len(ps.patches) == 1

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            PatchSet.from_any(42)


# ---------------------------------------------------------------------------
# CLI --patch-file
# ---------------------------------------------------------------------------

def write_corpus(tmp_path):
    for name, text in CORPUS.items():
        (tmp_path / name).write_text(text)
    return [str(tmp_path / name) for name in CORPUS]


class TestCliPatchFile:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_diff_and_exit_zero(self, fmt, tmp_path, capsys):
        patch_file = tmp_path / PATCH_FILENAMES[fmt]
        patch_file.write_text(PATCH_TEXTS[fmt])
        targets = write_corpus(tmp_path)
        rc = spatch_main(["--patch-file", str(patch_file), *targets])
        captured = capsys.readouterr()
        assert rc == 0
        assert "---" in captured.out and "+++" in captured.out

    def test_in_place_matches_engine(self, tmp_path, capsys):
        patch_file = tmp_path / "edit.blocks"
        patch_file.write_text(PATCH_TEXTS["blocks"])
        targets = write_corpus(tmp_path)
        rc = spatch_main(["--patch-file", str(patch_file), "--in-place",
                          *targets])
        assert rc == 0
        engine = PatchSet([frontend_patch("blocks")]).apply(codebase())
        for name in CORPUS:
            assert (tmp_path / name).read_text() == engine.files[name].text

    def test_in_place_stale_hash_leaves_target_byte_identical(
            self, tmp_path, capsys):
        # satellite regression: a failing frontend op must never leave a
        # half-applied file behind in --in-place mode
        ops = [
            {"action": "replace", "search": "return value * 2.0;",
             "replace": "return value * 3.0;"},
            {"action": "replace", "search": "printf",
             "replace": "fprintf",
             "old_hash": sha256_hex("stale")[:16]},
        ]
        patch_file = tmp_path / "ops.json"
        patch_file.write_text(json.dumps(ops))
        target = tmp_path / "alpha.c"
        target.write_text(CORPUS["alpha.c"])
        rc = spatch_main(["--patch-file", str(patch_file), "--in-place",
                          str(target)])
        capsys.readouterr()
        assert rc == 1  # nothing applied
        assert target.read_text() == CORPUS["alpha.c"]

    def test_interleaves_with_sp_file_in_argument_order(self, tmp_path,
                                                        capsys):
        cocci = tmp_path / "rename.cocci"
        cocci.write_text("@r@ @@\n- old();\n+ new_call();\n")
        ops = tmp_path / "ops.json"
        ops.write_text(json.dumps([
            {"action": "replace", "search": "new_call();",
             "replace": "new_call(2);"}]))
        target = tmp_path / "a.c"
        target.write_text("void f(void) { old(); }\n")
        rc = spatch_main(["--sp-file", str(cocci), "--patch-file", str(ops),
                          "--in-place", str(target)])
        capsys.readouterr()
        assert rc == 0
        assert target.read_text() == "void f(void) { new_call(2); }\n"


# ---------------------------------------------------------------------------
# server parity
# ---------------------------------------------------------------------------

@pytest.fixture
def daemon(tmp_path):
    daemon = PatchDaemon(f"unix:{tmp_path}/spatchd.sock",
                         PatchService(max_workspaces=8))
    daemon.serve_in_thread()
    yield daemon
    daemon.shutdown()


def canonical(payload):
    trimmed = {key: value for key, value in payload.items()
               if key not in ("profile", "workspace")}
    return json.dumps(trimmed, sort_keys=True)


class TestServerFrontends:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_inline_spec_matches_local_run(self, fmt, daemon):
        patch = frontend_patch(fmt)
        local = result_payload(PatchSet([patch]).apply(codebase()), [patch],
                               include_texts=True)
        with RemoteClient(daemon.address) as client:
            client.open_workspace("w")
            client.sync_codebase("w", codebase())
            remote = client.apply(
                "w", [{"kind": fmt, "name": PATCH_FILENAMES[fmt],
                       "text": PATCH_TEXTS[fmt]}], texts=True)
        assert canonical(remote) == canonical(local)

    def test_parsed_patch_travels_as_its_own_format(self, daemon):
        # a SemanticPatch parsed from a frontend file ships its original
        # source text under its frontend kind and round-trips exactly
        patch = frontend_patch("ap")
        local = result_payload(PatchSet([patch]).apply(codebase()), [patch],
                               include_texts=True)
        with RemoteClient(daemon.address) as client:
            client.open_workspace("w")
            client.sync_codebase("w", codebase())
            remote = client.apply("w", [patch], texts=True)
        assert canonical(remote) == canonical(local)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_bad_inline_spec_diagnostic_matches_local(self, fmt, daemon):
        bad = {"jsonops": "[{\"action\": }]",
               "ap": "changes:\n  - action: delete\n    wibble: 'x'\n",
               "blocks": "<<<<<<< SEARCH\na\n=======\nb\n"}[fmt]
        try:
            SemanticPatch.from_text(bad, format=fmt, name="inline")
        except Exception as exc:
            expected = patch_error_line("inline", exc)
        else:  # pragma: no cover - the specs above must not parse
            pytest.fail("expected the bad spec to fail locally")
        with RemoteClient(daemon.address) as client:
            client.open_workspace("w")
            with pytest.raises(RemoteError) as remote_exc:
                client.apply("w", [{"kind": fmt, "name": "inline",
                                    "text": bad}])
        assert remote_exc.value.kind == "bad-patch"
        assert remote_exc.value.message == expected
