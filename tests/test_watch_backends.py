"""Tests for the filesystem-watching backends and their selection logic.

The backend contract is deliberately weak — ``wait(timeout)`` answers
"may anything have changed?" and correctness stays with the stat+hash
sweep — so these tests check selection/fallback/logging, event latency
where a real backend is available (inotify on Linux), and the service's
workspace auto-refresh riding on top.
"""

import sys
import threading
import time

import pytest

from repro.server import watch
from repro.server.service import PatchService
from repro.server.watch import (BACKEND_ENV, InotifyWatcher, PollWatcher,
                                create_watcher)


def _inotify_available(tmp_path) -> bool:
    try:
        InotifyWatcher([str(tmp_path)]).close()
        return True
    except Exception:
        return False


class TestSelection:
    def test_poll_is_always_available(self, tmp_path):
        logs = []
        watcher = create_watcher([str(tmp_path)], backend="poll",
                                 log=logs.append)
        assert isinstance(watcher, PollWatcher)
        assert watcher.wait(0.01) is True  # poll semantics: always sweep
        assert logs == ["watch backend: poll"]
        watcher.close()

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            create_watcher([str(tmp_path)], backend="frobnicate")

    def test_auto_never_picks_an_unavailable_watchdog(self, tmp_path,
                                                      monkeypatch):
        # simulate an environment with no watchdog package at all
        monkeypatch.setattr(watch.importlib.util, "find_spec",
                            lambda name: None)
        logs = []
        watcher = create_watcher([str(tmp_path)], backend="auto",
                                 log=logs.append)
        assert watcher.name in ("inotify", "poll")
        assert any("watch backend:" in line for line in logs)
        watcher.close()

    def test_pinned_backend_falls_back_to_poll_with_a_log_line(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr(watch.importlib.util, "find_spec",
                            lambda name: None)
        logs = []
        watcher = create_watcher([str(tmp_path)], backend="watchdog",
                                 log=logs.append)
        assert isinstance(watcher, PollWatcher)
        assert any("fell back" in line for line in logs)
        watcher.close()

    def test_env_override_pins_the_choice(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "poll")
        logs = []
        watcher = create_watcher([str(tmp_path)], backend="auto",
                                 log=logs.append)
        assert isinstance(watcher, PollWatcher)
        watcher.close()

    def test_bogus_env_override_is_ignored(self, tmp_path, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "nonsense")
        watcher = create_watcher([str(tmp_path)], backend="auto",
                                 log=lambda line: None)
        assert watcher.name in ("watchdog", "inotify", "poll")
        watcher.close()


@pytest.mark.skipif(not sys.platform.startswith("linux"),
                    reason="inotify is Linux-only")
class TestInotify:
    def test_events_and_new_subdirectories(self, tmp_path):
        if not _inotify_available(tmp_path):
            pytest.skip("inotify unavailable in this environment")
        (tmp_path / "a.c").write_text("int x;\n")
        watcher = InotifyWatcher([str(tmp_path)])
        try:
            assert watcher.wait(0.1) is False  # quiet tree times out

            timer = threading.Timer(
                0.05, lambda: (tmp_path / "a.c").write_text("int y;\n"))
            timer.start()
            started = time.perf_counter()
            assert watcher.wait(5.0) is True
            assert time.perf_counter() - started < 4.0  # event, not timeout

            # a directory created after construction is picked up by the
            # post-event rescan: edits inside it fire too
            sub = tmp_path / "sub"
            sub.mkdir()
            (sub / "b.c").write_text("int z;\n")
            assert watcher.wait(5.0) is True
            (sub / "b.c").write_text("int q;\n")
            assert watcher.wait(5.0) is True
        finally:
            watcher.close()

    def test_file_target_watches_its_directory(self, tmp_path):
        if not _inotify_available(tmp_path):
            pytest.skip("inotify unavailable in this environment")
        target = tmp_path / "only.c"
        target.write_text("int x;\n")
        watcher = InotifyWatcher([str(target)])
        try:
            timer = threading.Timer(0.05,
                                    lambda: target.write_text("int y;\n"))
            timer.start()
            assert watcher.wait(5.0) is True
        finally:
            watcher.close()


class TestServiceAutoRefresh:
    def test_rooted_workspace_follows_disk(self, tmp_path):
        (tmp_path / "x.c").write_text("void f(void) { old(); }\n")
        service = PatchService()
        service.open_workspace("auto", root=str(tmp_path), watch=True,
                               watch_backend="poll", watch_interval=0.05)
        try:
            workspace = service._workspaces["auto"]
            (tmp_path / "x.c").write_text("void f(void) { old(); edit(); }\n")
            (tmp_path / "new.c").write_text("int fresh;\n")
            deadline = time.time() + 10.0
            while time.time() < deadline:
                with workspace.lock:
                    synced = "new.c" in workspace.codebase \
                        and "edit" in workspace.codebase["x.c"]
                if synced:
                    break
                time.sleep(0.05)
            assert synced, "auto-refresh never folded the disk delta in"
            payload = service.apply(
                "auto", [{"kind": "smpl", "name": "r",
                          "text": "@r@ @@\n- old();\n+ new_call();\n"}])
            assert payload["files"]["x.c"]["changed"]
        finally:
            service.close()


class TestCliWatchBackend:
    def test_watch_loop_runs_with_pinned_poll_backend(self, tmp_path,
                                                      capsys):
        from repro.cli.spatch import main as spatch_main

        target = tmp_path / "code.c"
        target.write_text("void f(void) { old(); }\n")
        cocci = tmp_path / "r.cocci"
        cocci.write_text("@r@ @@\n- old();\n+ new_call();\n")
        rc = spatch_main(["--sp-file", str(cocci), str(target), "--watch",
                          "--watch-backend", "poll", "--watch-interval",
                          "0.05", "--watch-polls", "2"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "watch backend: poll" in captured.err
        assert "new_call();" in captured.out
