"""Tests for the compiled matcher backend (:mod:`repro.engine.compile`).

The contract under test is strict behavioural equality: for every cookbook
patch over every workload family, the compiled backend must produce the
same output texts, the same per-rule match reports and the same
diagnostics as the interpreted reference matcher — the two backends are
the same function, one of them just runs faster.  On top of the
differential sweep there are targeted units for the pieces with their own
invariants: the pattern trie's per-rule demultiplexing, ``match_expr_list``
dots backtracking, the vectorized :class:`TokenQuery` scan and the
fingerprint-keyed compile cache.
"""

import os

import pytest

from repro import CodeBase, PatchSet
from repro.engine.bindings import EMPTY_ENV
from repro.engine.compile import (CompiledPatch, CompiledRule, backend_enabled,
                                  clear_compile_cache, compile_cache_info,
                                  compiled_patch_for, evict_compiled,
                                  matcher_counters)
from repro.engine.matcher import Matcher
from repro.engine.prefilter import PatchPrefilter, TokenQuery, scan_token_set
from repro.lang.parser import parse_source
from repro.options import SpatchOptions
from repro.smpl.parser import parse_semantic_patch

from test_pipeline_differential import ALL_COOKBOOK, _mini
from test_prefilter import _cookbook_patch

WORKLOAD_PARTS = ("omp", "gadget", "cuda", "acc", "raw", "unroll", "mv",
                  "rsb", "kokkos")


# ---------------------------------------------------------------------------
# interpreted vs. compiled: the full cookbook over every workload family
# ---------------------------------------------------------------------------

def _assert_identical(interp, compiled, context):
    assert len(compiled.per_patch) == len(interp.per_patch), context
    for index, (ref, got) in enumerate(zip(interp.per_patch,
                                           compiled.per_patch)):
        assert set(got.files) == set(ref.files), (context, index)
        for filename in ref.files:
            where = (context, index, filename)
            assert got[filename].text == ref[filename].text, where
            assert got[filename].rule_reports == \
                ref[filename].rule_reports, where
            assert got[filename].diagnostics == \
                ref[filename].diagnostics, where
    assert list(compiled.files) == list(interp.files), context
    for filename in interp.files:
        assert compiled[filename].text == interp[filename].text, context


@pytest.mark.parametrize("part", WORKLOAD_PARTS)
def test_differential_full_cookbook(part):
    """Every cookbook patch, in pipeline order, over one workload family:
    the compiled backend must be byte-identical to the interpreter."""
    patches = [_cookbook_patch(name) for name in ALL_COOKBOOK]
    codebase = _mini(part)
    interp = PatchSet(patches).apply(codebase, compile=False)
    compiled = PatchSet(patches).apply(codebase, compile=True)
    _assert_identical(interp, compiled, part)


def test_differential_without_prefilter():
    """The prefilter must not mask a backend divergence: with it disabled
    every rule runs in every file, compiled and interpreted alike."""
    patches = [_cookbook_patch(name) for name in ALL_COOKBOOK]
    codebase = _mini("gadget", "cuda")
    interp = PatchSet(patches).apply(codebase, prefilter=False, compile=False)
    compiled = PatchSet(patches).apply(codebase, prefilter=False, compile=True)
    _assert_identical(interp, compiled, "no-prefilter")


def test_compiled_is_the_default_backend(monkeypatch):
    monkeypatch.delenv("REPRO_MATCHER", raising=False)
    assert backend_enabled(None) is True
    monkeypatch.setenv("REPRO_MATCHER", "interp")
    assert backend_enabled(None) is False
    # an explicit kwarg beats the environment in both directions
    assert backend_enabled(True) is True
    monkeypatch.setenv("REPRO_MATCHER", "compiled")
    assert backend_enabled(False) is False


# ---------------------------------------------------------------------------
# per-rule lowering against the reference matcher
# ---------------------------------------------------------------------------

def _both_backends(patch_text: str, code: str, rule_index: int = 0,
                   cxx: bool = False, env=EMPTY_ENV):
    patch = parse_semantic_patch(patch_text)
    options = patch.options if patch.options.cxx else \
        (SpatchOptions(cxx=17) if cxx else patch.options)
    rule = patch.patch_rules()[rule_index]
    tree = parse_source(code, "m.c", options=options)
    ref = Matcher(rule, tree, options=options).match_all(env)
    crule = CompiledRule(rule, options)
    got = crule.match_all(tree, env)
    return ref, got, crule


def _signatures(instances):
    return [inst.signature() for inst in instances]


def test_expr_list_dots_backtracking():
    """``f(..., E, ...)`` forces the expression-list matcher to try every
    split; the compiled ``mlist`` closure must enumerate the same set, in
    the same order, as the interpreter's recursion."""
    patch = "@r@\nexpression E;\n@@\nf(..., E, ...)\n"
    code = "void g(void) { f(a, b, c); f(); f(x); }"
    ref, got, crule = _both_backends(patch, code)
    assert not crule._fallback
    assert _signatures(got) == _signatures(ref)
    # the dedup the session applies collapses them to one instance per span,
    # but the raw enumeration must agree even before dedup
    assert len(got) == len(ref)


def test_expr_list_trailing_dots_and_pairs():
    patch = "@r@\nexpression A,B;\n@@\nmemcpy(A, B, ...)\n"
    code = ("void g(void) { memcpy(dst, src, n); memcpy(p, q, n, extra); "
            "memcpy(one); }")
    ref, got, crule = _both_backends(patch, code)
    assert not crule._fallback
    assert _signatures(got) == _signatures(ref)


def test_statement_dots_sequence_parity():
    patch = ("@r@\nexpression E;\n@@\n- lock(E);\n  ...\n- unlock(E);\n")
    code = ("void g(void) { lock(m); a(); b(); unlock(m); lock(n); "
            "unlock(q); }")
    ref, got, crule = _both_backends(patch, code)
    assert not crule._fallback
    assert _signatures(got) == _signatures(ref)


def test_isomorphism_parity_under_filters():
    """The candidate-root filters must admit isomorphic spellings: ``E++``
    also matches ``E += 1`` (and vice versa), ``v == k`` also matches
    ``k == v``, ``y[i+0]`` also matches ``y[i]``."""
    for patch_text, code in [
        ("@r@\nidentifier i;\n@@\n- i++\n+ step(i)\n",
         "void f(void) { a++; b += 1; d += 2; e = 1; }"),
        ("@r@\nidentifier v;\nconstant k;\n@@\nv == k\n",
         "void f(void) { if (x == 3) a(); if (4 == y) b(); }"),
        ("@r@\nidentifier i;\n@@\ny[i+0]\n",
         "void f(void) { q = y[i]; r = y[j+0]; s = z[i]; }"),
    ]:
        ref, got, crule = _both_backends(patch_text, code)
        assert not crule._fallback, patch_text
        assert _signatures(got) == _signatures(ref), patch_text


# ---------------------------------------------------------------------------
# the pattern trie: shared roots, demultiplexed results
# ---------------------------------------------------------------------------

TRIE_PATCH = """\
@a@
expression E;
@@
- old_free(E)
+ new_free(E)

@b@
expression E;
@@
- old_free(E)

@c@
expression X,Y;
@@
- X == Y
"""


def test_trie_fuses_shared_call_roots():
    patch = parse_semantic_patch(TRIE_PATCH)
    compiled = CompiledPatch(patch, patch.options)
    trie = compiled.trie()
    # rules a and b probe the same (Call, callee) bucket: one shared walk
    assert trie.rules_at("expr", "Call", "old_free") == ["a", "b"]
    assert trie.fusion_factor > 1.0
    assert trie.rules_at("expr", "BinaryOp") == ["c"]


def test_trie_demultiplexes_per_rule_reports():
    """Fused candidate enumeration must still attribute matches to the
    right rule: rule a rewrites the call, rule b then sees nothing (the
    session re-parses after an edit), rule c matches independently."""
    code = "void f(void) { old_free(p); if (x == y) g(); }"
    from repro.api import SemanticPatch

    for compile_flag in (False, True):
        patch = SemanticPatch.from_string(TRIE_PATCH, name="trie")
        result = patch.apply({"t.c": code}, compile=compile_flag)
        reports = {r.rule: r.matches for r in result.files["t.c"].rule_reports}
        assert reports == {"a": 1, "c": 1}, compile_flag
        assert "new_free(p)" in result.files["t.c"].text, compile_flag


def test_unfilterable_rule_lands_on_star_root():
    patch = parse_semantic_patch(
        "@r@\nexpression E1,E2;\n@@\n- E1 = E2\n")
    compiled = CompiledPatch(patch, patch.options)
    trie = compiled.trie()
    assert trie.rules_at("expr", "Assignment") == ["r"] or \
        trie.rules_at("expr", "*") == ["r"]


# ---------------------------------------------------------------------------
# the vectorized token-query scan
# ---------------------------------------------------------------------------

class TestTokenQuery:
    UNIVERSE = frozenset({"foo", "bar_2", "omp", "cudaMalloc", "<<<", ">>>"})

    def _reference(self, text):
        return self.UNIVERSE & scan_token_set(text)

    @pytest.mark.parametrize("text", [
        "int foo; bar_2(); /* omp */ \"cudaMalloc\"",
        "foo12 a1foo _foo foo_ foo",     # word-boundary traps
        "12foo",                         # digit prefix: lexes as 'foo'
        "a1foo",                         # letter+digit prefix: one token
        "k<<<grid, n>>>(x)",             # chevron punctuators
        "foo<<<bar_2>>>foo",
        "",                              # empty file
        "foofoo barbar_2 xomp",          # superstrings only
        "#pragma omp parallel for",
        "foo\nbar_2\r\nomp\tcudaMalloc",
    ])
    def test_matches_full_scan(self, text):
        query = TokenQuery(self.UNIVERSE)
        assert query.scan(text) == self._reference(text)

    def test_workload_texts_match_full_scan(self):
        codebase = _mini("omp", "cuda", "raw")
        for name in ALL_COOKBOOK:
            prefilter = PatchPrefilter(_cookbook_patch(name).ast)
            for text in codebase.files.values():
                full = scan_token_set(text)
                query = prefilter.scan_query(text)
                # same plan from either token set — the soundness contract
                assert prefilter.plan_for(query) == prefilter.plan_for(full), \
                    name

    def test_early_exit_still_complete(self):
        query = TokenQuery({"a", "b"})
        assert query.scan("b a b a b a") == {"a", "b"}

    def test_unfilterable_words_reported_present(self):
        # a non-identifier, non-chevron word cannot gate soundly: it must
        # always scan as present, never silently filter a rule out
        query = TokenQuery({"foo", "??!"})
        assert "??!" in query.scan("nothing here")
        assert query.scan("foo") == {"foo", "??!"}


# ---------------------------------------------------------------------------
# the fingerprint-keyed compile cache
# ---------------------------------------------------------------------------

class TestCompileCache:
    def test_twin_patches_share_a_compilation(self):
        clear_compile_cache()
        patch_a = parse_semantic_patch(TRIE_PATCH)
        patch_b = parse_semantic_patch(TRIE_PATCH)
        before = matcher_counters()
        compiled_a = compiled_patch_for(patch_a, patch_a.options)
        compiled_b = compiled_patch_for(patch_b, patch_b.options)
        assert compiled_a is compiled_b
        after = matcher_counters()
        assert after["compile_cache_misses"] == \
            before["compile_cache_misses"] + 1
        assert after["compile_cache_hits"] >= before["compile_cache_hits"] + 1
        # the twin rule resolves by name to the cached compilation's rule
        twin_rule = patch_b.patch_rules()[0]
        crule = compiled_a.rule_for(twin_rule)
        assert crule is not None and crule.rule.name == twin_rule.name

    def test_evict_compiled_drops_the_entry(self):
        clear_compile_cache()
        patch = parse_semantic_patch(TRIE_PATCH)
        compiled_patch_for(patch, patch.options)
        assert compile_cache_info()["entries"] == 1
        assert evict_compiled(patch, patch.options) is True
        assert compile_cache_info()["entries"] == 0
        assert evict_compiled(patch, patch.options) is False

    def test_engine_compile_kwarg_beats_environment(self, monkeypatch):
        from repro.engine.engine import Engine

        patch = parse_semantic_patch(TRIE_PATCH)
        monkeypatch.setenv("REPRO_MATCHER", "interp")
        assert Engine(patch).compiled() is None
        assert Engine(patch, compile=True).compiled() is not None
        monkeypatch.delenv("REPRO_MATCHER")
        assert Engine(patch, compile=False).compiled() is None
        assert Engine(patch).compiled() is not None

    def test_matcher_counters_shape(self):
        counters = matcher_counters()
        for key in ("match_calls", "candidates_visited",
                    "candidates_filtered", "filter_rate", "rules_compiled",
                    "rules_fallback", "compile_cache_hits", "trees_indexed",
                    "index_reuses", "fusion_factor"):
            assert key in counters
