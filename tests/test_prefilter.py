"""Differential and unit tests for the required-token prefilter.

The prefilter's contract is stronger than "same patched text": gating a rule
(or skipping a file) must be observably identical to the rule matching
nothing.  The differential tests therefore compare texts *and* per-rule
reports between prefilter-on and prefilter-off application for every
cookbook patch × its matching workload.
"""

import pytest

from repro import CodeBase, SemanticPatch
from repro.engine.prefilter import (PatchPrefilter, required_tokens,
                                    scan_token_set)


# ---------------------------------------------------------------------------
# cookbook patch × matching workload differential suite
# ---------------------------------------------------------------------------

def _openmp():
    from repro.workloads import openmp_kernels
    return openmp_kernels.generate(n_files=2, kernels_per_file=2,
                                   regions_per_file=2, seed=7)


def _gadget():
    from repro.workloads import gadget
    return gadget.generate(n_files=2, loops_per_file=2,
                           grid_kernels_per_file=2, seed=7)


COOKBOOK_WORKLOADS = {
    "likwid_instrumentation": _openmp,
    "declare_variant": _openmp,
    "target_multiversioning": _openmp,
    "bloat_removal": lambda: __import__(
        "repro.workloads.multiversion_app", fromlist=["generate"]
    ).generate(n_files=2, clone_sets_per_file=2, seed=7),
    "reroll_p0": lambda: __import__(
        "repro.workloads.unrolled", fromlist=["generate"]
    ).generate(n_files=2, unrolled_per_file=2, impostors_per_file=1, seed=7),
    "reroll_p1r1": lambda: __import__(
        "repro.workloads.unrolled", fromlist=["generate"]
    ).generate(n_files=2, unrolled_per_file=2, impostors_per_file=1, seed=7),
    "mdspan_multiindex": _gadget,
    "cuda_to_hip": lambda: __import__(
        "repro.workloads.cuda_app", fromlist=["generate"]
    ).generate(n_files=2, seed=7),
    "acc_to_omp": lambda: __import__(
        "repro.workloads.openacc_app", fromlist=["generate"]
    ).generate(n_files=2, loops_per_file=3, seed=7),
    "raw_loop_to_find": lambda: __import__(
        "repro.workloads.rawloops", fromlist=["generate"]
    ).generate(n_files=2, searches_per_file=3, counters_per_file=1, seed=7),
    "kokkos_lambda": lambda: __import__(
        "repro.workloads.kokkos_exercise", fromlist=["generate"]
    ).generate(n_files=1, seed=7),
    "gcc_workaround": lambda: __import__(
        "repro.workloads.librsb_like", fromlist=["generate"]
    ).generate(n_files=2, seed=7),
}


def _cookbook_patch(name: str) -> SemanticPatch:
    if name == "mdspan_multiindex":
        # the CLI default targets an array literally named 'a'; point the
        # same cookbook patch at the arrays the GADGET workload declares
        from repro.cookbook import mdspan
        return mdspan.multiindex_patch_for_arrays({"rho": 3, "phi": 3})
    from repro.cli.spatch import _cookbook_builders
    return _cookbook_builders()[name]()


@pytest.mark.parametrize("name", sorted(COOKBOOK_WORKLOADS))
def test_differential_prefilter_on_off(name):
    """prefilter on and off must produce byte-identical results on every
    cookbook patch applied to its matching workload."""
    workload = COOKBOOK_WORKLOADS[name]()
    baseline = _cookbook_patch(name).apply(workload, prefilter=False)
    filtered = _cookbook_patch(name).apply(workload, prefilter=True)

    assert set(baseline.files) == set(filtered.files)
    for filename in baseline.files:
        assert filtered[filename].text == baseline[filename].text, filename
        assert filtered[filename].rule_reports == \
            baseline[filename].rule_reports, filename
    assert filtered.total_matches == baseline.total_matches
    # the pairing is meaningful: the patch actually does something here
    assert baseline.total_matches > 0


@pytest.mark.parametrize("name", sorted(COOKBOOK_WORKLOADS))
def test_differential_on_irrelevant_codebase(name):
    """On a code base the patch has nothing to do with, the prefilter must
    still be invisible (and files it skips must come back untouched)."""
    codebase = CodeBase.from_files({
        "plain.c": "int add(int a, int b) { return a + b; }\n",
        "strings.c": 'const char *s = "cudaMalloc kernels <<<look>>>";\n',
    })
    baseline = _cookbook_patch(name).apply(codebase, prefilter=False)
    filtered = _cookbook_patch(name).apply(codebase, prefilter=True)
    for filename in codebase:
        assert filtered[filename].text == baseline[filename].text


# ---------------------------------------------------------------------------
# required-token extraction unit tests
# ---------------------------------------------------------------------------

def _only_rule(patch_text: str):
    ast = SemanticPatch.from_string(patch_text).ast
    return ast.patch_rules()[0]


class TestRequiredTokens:
    def test_literal_identifiers_are_required(self):
        rule = _only_rule("@r@ @@\n- old_api();\n+ new_api();\n")
        required = required_tokens(rule)
        assert "old_api" in required
        assert "new_api" not in required  # plus material is never required

    def test_metavariables_are_not_required(self):
        rule = _only_rule("@r@\nidentifier fn;\nexpression list el;\n"
                          "position p;\n@@\nfn@p(el)\n")
        assert required_tokens(rule) == frozenset()

    def test_inherited_metavariables_are_not_required(self):
        # inherited metavariables are "optional" from the file's point of
        # view: their binding comes from another rule's environment
        text = ("@a@\nidentifier f;\n@@\nmarked(f);\n\n"
                "@b@\nidentifier a.f;\n@@\n- f();\n")
        ast = SemanticPatch.from_string(text).ast
        rule_b = ast.patch_rules()[1]
        assert required_tokens(rule_b) == frozenset()

    def test_disjunction_tokens_are_not_required(self):
        rule = _only_rule("@r@ @@\nanchor_call();\n(\n- left_call();\n|\n"
                          "- right_call();\n)\n")
        required = required_tokens(rule)
        assert "anchor_call" in required
        assert "left_call" not in required and "right_call" not in required

    def test_chevrons_are_required_but_other_punct_is_not(self):
        from repro.cookbook import cuda_hip
        rule = cuda_hip.kernel_launch_patch().ast.patch_rules()[0]
        required = required_tokens(rule)
        assert "<<<" in required and ">>>" in required
        assert "(" not in required and "," not in required

    def test_directive_words_up_to_dots(self):
        rule = _only_rule("@r@ @@\n#pragma omp parallel ...\n{\n+ MARK();\n"
                          "...\n}\n")
        required = required_tokens(rule)
        assert {"pragma", "omp", "parallel"} <= required

    def test_directive_words_after_pragmainfo_metavar_not_required(self):
        # pragma matching is prefix-based and a pragmainfo metavariable
        # absorbs the rest of the line: literal words after it are optional
        rule = _only_rule("@r@\npragmainfo P;\n@@\n- #pragma omp P distinctiveword\n")
        required = required_tokens(rule)
        assert {"pragma", "omp"} <= required
        assert "distinctiveword" not in required and "P" not in required

    def test_include_directive_words(self):
        rule = _only_rule("@r@ @@\n#include <omp.h>\n+ #include <likwid.h>\n")
        required = required_tokens(rule)
        assert {"include", "omp", "h"} <= required
        assert "likwid" not in required

    def test_numbers_are_not_required(self):
        # E + 0 / E += 1 isomorphisms mean numeric literals can match other
        # spellings; they must never gate a file
        rule = _only_rule("@r@\nidentifier i;\n@@\n- i = i + 0;\n")
        assert not any(tok.isdigit() for tok in required_tokens(rule))


class TestScanTokenSet:
    def test_words_and_chevrons(self):
        tokens = scan_token_set("k<<<grid, block>>>(arg); // cudaFree later\n")
        assert {"k", "grid", "block", "arg", "cudaFree", "<<<", ">>>"} <= tokens

    def test_scan_never_raises_on_broken_sources(self):
        # an unterminated literal would make the full lexer error out
        tokens = scan_token_set('const char *s = "unterminated\nint next_sym;\n')
        assert "next_sym" in tokens


# ---------------------------------------------------------------------------
# file-plan semantics
# ---------------------------------------------------------------------------

class TestTokenIndexStaleness:
    def test_direct_files_mutation_is_picked_up(self):
        # `files` is a public dict and was always mutable in place; the lazy
        # token index must revalidate against the text it is handed
        codebase = CodeBase.from_files({"a.c": "int main(void) { return 0; }\n"})
        patch = SemanticPatch.from_string("@r@ @@\n- old_fn();\n+ new_fn();\n")
        assert patch.apply(codebase).total_matches == 0
        codebase.files["a.c"] = "void f(void) { old_fn(); }\n"
        result = patch.apply(codebase)
        assert result.total_matches == 1
        assert "new_fn();" in result["a.c"].text

    def test_pragmainfo_suffix_pattern_matches_with_prefilter(self):
        # end-to-end repro of the directive-word unsoundness: the literal
        # word after the pragmainfo metavariable is absent from the file
        patch_text = "@r@\npragmainfo P;\n@@\n- #pragma omp P distinctiveword\n"
        code = {"a.c": "void f(void) {\n#pragma omp simd\nwork();\n}\n"}
        patch = SemanticPatch.from_string(patch_text)
        baseline = patch.apply(dict(code), prefilter=False)
        filtered = patch.apply(dict(code), prefilter=True)
        assert filtered["a.c"].text == baseline["a.c"].text
        assert filtered.total_matches == baseline.total_matches


class TestRuleChains:
    def test_token_inserted_by_earlier_rule_does_not_gate_later_rule(self):
        # rule b's required token 'bar_api' only exists because rule a
        # inserted it; the prefilter must not gate b on the original text
        text = ("@a@ @@\n- foo_api();\n+ bar_api();\n\n"
                "@b@ @@\n- bar_api();\n+ baz_api();\n")
        code = {"a.c": "void f(void) { foo_api(); }\n"}
        patch = SemanticPatch.from_string(text)
        baseline = patch.apply(dict(code), prefilter=False)
        filtered = patch.apply(dict(code), prefilter=True)
        assert "baz_api();" in baseline["a.c"].text
        assert filtered["a.c"].text == baseline["a.c"].text

    def test_metavar_in_plus_material_makes_later_rules_unfilterable(self):
        # a '+' line splicing a metavariable can insert unbounded text (e.g.
        # from a script rule), so later requirements must be dropped entirely
        text = ("@a@\nidentifier f;\n@@\n- old_marker(f);\n+ f();\n\n"
                "@b@ @@\n- anything_at_all();\n")
        prefilter = PatchPrefilter(SemanticPatch.from_string(text).ast)
        assert prefilter.requirements["a"] == frozenset({"old_marker"})
        assert prefilter.requirements["b"] == frozenset()

    def test_literal_plus_material_keeps_later_requirements_precise(self):
        text = ("@a@ @@\n- foo_api();\n+ bar_api();\n\n"
                "@b@ @@\n- unrelated_api();\n")
        prefilter = PatchPrefilter(SemanticPatch.from_string(text).ast)
        assert prefilter.requirements["b"] == frozenset({"unrelated_api"})


class TestFilePlans:
    def test_file_without_required_tokens_is_skipped(self):
        ast = SemanticPatch.from_string("@r@ @@\n- special_call();\n").ast
        prefilter = PatchPrefilter(ast)
        plan = prefilter.plan_for_text("int main(void) { return 0; }\n")
        assert not plan.needs_session and not plan.allowed_rules

    def test_unfilterable_rule_keeps_every_file(self):
        # every identifier is a metavariable: the rule could match anywhere
        ast = SemanticPatch.from_string(
            "@r@\nidentifier fn;\nexpression list el;\n@@\nfn(el)\n").ast
        plan = PatchPrefilter(ast).plan_for_text("int x;\n")
        assert plan.needs_session and "r" in plan.allowed_rules

    def test_unconditional_script_rule_keeps_sessions_alive(self):
        text = ("@r@ @@\n- special_call();\n\n"
                "@script:python s@\nnf;\n@@\ncoccinelle.nf = cocci.make_ident('x')\n")
        prefilter = PatchPrefilter(SemanticPatch.from_string(text).ast)
        plan = prefilter.plan_for_text("int main(void) { return 0; }\n")
        assert plan.needs_session  # the script could still run here

    def test_script_whose_imports_cannot_run_allows_skip(self):
        from repro.cookbook import cuda_hip
        # the function-rename chain's script imports from cfe, which is
        # unfilterable, so cuda_to_hip never skips whole files...
        ast = cuda_hip.cuda_to_hip_patch().ast
        plan = PatchPrefilter(ast).plan_for_text("int x;\n")
        assert plan.needs_session
        # ...but a chain whose matching rule is gated lets the file skip
        text = ("@a@\nposition p;\n@@\nspecial_call@p();\n\n"
                "@script:python s@\np << a.p;\nnf;\n@@\n"
                "coccinelle.nf = cocci.make_ident('x')\n")
        prefilter = PatchPrefilter(SemanticPatch.from_string(text).ast)
        plan = prefilter.plan_for_text("int main(void) { return 0; }\n")
        assert not plan.needs_session

    def test_dependent_rule_cannot_run_without_its_dependency(self):
        text = ("@first@ @@\n- special_call();\n\n"
                "@second depends on first@ @@\n- other_call();\n")
        prefilter = PatchPrefilter(SemanticPatch.from_string(text).ast)
        # other_call is present but special_call is not: 'second' can never
        # have its dependency satisfied, so the whole file may be skipped
        plan = prefilter.plan_for_text("void f(void) { other_call(); }\n")
        assert "second" in plan.allowed_rules and "first" not in plan.allowed_rules
        assert not plan.needs_session
