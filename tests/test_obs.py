"""The observability layer: metrics registry, tracer, journal, sinks.

Covers the tentpole's three pillars — the registry primitives
(counter/gauge/histogram families, collectors, Prometheus rendering),
the contextvar span tracer (including Chrome trace-event export and
fork-delta grafting), and the sinks (JSONL journal with rotation, the
stdlib HTTP ``/metrics`` endpoint, the daemon's ``metrics`` verb) — plus
the soundness property everything hangs on: telemetry on vs. off is
byte-identical on every deterministic output.
"""

import json
import urllib.request

import pytest

from repro.obs import journal as journal_mod
from repro.obs import registry as registry_mod
from repro.obs import trace as trace_mod
from repro.obs.journal import Journal
from repro.obs.metrics_http import MetricsServer
from repro.obs.registry import (DEFAULT_BUCKETS, Histogram, MetricsRegistry,
                                merge_telemetry, telemetry_capture)


# ---------------------------------------------------------------------------
# registry primitives
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_counter_children_are_per_label_set(self):
        registry = MetricsRegistry()
        hits = registry.counter("t_total", "help", cache="tree")
        again = registry.counter("t_total", cache="tree")
        other = registry.counter("t_total", cache="shared")
        hits.inc()
        hits.inc(2)
        assert again is hits and other is not hits
        assert hits.value == 3 and other.value == 0

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5.0)
        gauge.dec(2.0)
        assert gauge.value == 3.0

    def test_histogram_state_and_summary(self):
        histogram = Histogram(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.005, 0.05, 0.5):
            histogram.observe(value)
        state = histogram.state()
        assert state["counts"] == [2, 1, 1, 0]  # trailing +Inf bucket
        assert state["count"] == 4
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(0.56 / 4)
        assert summary["p50"] == 0.01  # 2 of 4 land in the first bucket

    def test_histogram_merge_state_adds_counts(self):
        first = Histogram(buckets=(0.01, 0.1))
        second = Histogram(buckets=(0.01, 0.1))
        first.observe(0.005)
        second.observe(0.05)
        second.observe(5.0)
        first.merge_state(second.state())
        state = first.state()
        assert state["count"] == 3 and state["counts"] == [1, 1, 1]

    def test_collector_rows_fold_into_snapshot(self):
        registry = MetricsRegistry()
        registry.register_collector(
            lambda: [("legacy_total", "counter", "bridged", {"k": "v"}, 7.0)])
        snapshot = registry.snapshot()
        assert snapshot["legacy_total"]["samples"]['{k="v"}'] == 7.0

    def test_broken_collector_does_not_kill_the_scrape(self):
        registry = MetricsRegistry()

        def broken():
            raise RuntimeError("boom")

        registry.register_collector(broken)
        registry.counter("ok_total").inc()
        assert "ok_total 1" in registry.render_prometheus()

    def test_unregister_collector(self):
        registry = MetricsRegistry()
        collector = registry.register_collector(
            lambda: [("gone_total", "counter", "", {}, 1.0)])
        registry.unregister_collector(collector)
        assert "gone_total" not in registry.render_prometheus()


class TestPrometheusRendering:
    """The text exposition must be valid Prometheus 0.0.4: TYPE lines,
    cumulative ``le`` buckets ending at +Inf == _count, numeric samples."""

    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("r_hits_total", "Hits", cache="tree").inc(3)
        histogram = registry.histogram("r_seconds", "Timing",
                                       buckets=(0.1, 1.0), phase="parse")
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        return registry

    def test_families_carry_help_and_type(self):
        text = self._registry().render_prometheus()
        assert "# HELP r_hits_total Hits" in text
        assert "# TYPE r_hits_total counter" in text
        assert "# TYPE r_seconds histogram" in text
        assert 'r_hits_total{cache="tree"} 3' in text

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        text = self._registry().render_prometheus()
        buckets = [line for line in text.splitlines()
                   if line.startswith("r_seconds_bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)  # cumulative, never decreasing
        assert 'le="+Inf"' in buckets[-1] and counts[-1] == 3
        assert 'r_seconds_count{phase="parse"} 3' in text

    def test_every_sample_line_parses(self):
        for line in self._registry().render_prometheus().splitlines():
            if line.startswith("#") or not line:
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # must be a plain number
            assert name_part[0].isalpha()


# ---------------------------------------------------------------------------
# the kill switch
# ---------------------------------------------------------------------------

class TestKillSwitch:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert registry_mod.enabled()

    @pytest.mark.parametrize("value", ["0", "off", "no", "false", " OFF "])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_OBS", value)
        assert not registry_mod.enabled()

    def test_phase_is_shared_noop_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        assert registry_mod.phase("parse") is registry_mod.phase("match")

    def test_capture_delta_is_empty_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        assert telemetry_capture().delta() == {}


# ---------------------------------------------------------------------------
# spans and traces
# ---------------------------------------------------------------------------

class TestTracer:
    def test_no_trace_means_inactive_and_noop_spans(self):
        assert not trace_mod.tracing_active()
        assert trace_mod.current_trace_id() is None
        assert trace_mod.span("parse") is trace_mod.span("match")

    def test_spans_nest_under_the_active_trace(self):
        tracer = trace_mod.start_trace("root")
        try:
            assert trace_mod.tracing_active()
            with trace_mod.span("outer"):
                with trace_mod.span("inner"):
                    pass
        finally:
            root = tracer.finish()
        assert not trace_mod.tracing_active()
        payload = root.to_payload()
        assert payload["name"] == "root"
        outer = payload["children"][0]
        assert outer["name"] == "outer"
        assert outer["children"][0]["name"] == "inner"
        # nanosecond timings: a child never outlasts its parent
        inner = outer["children"][0]
        assert outer["start_ns"] <= inner["start_ns"]
        assert inner["end_ns"] <= outer["end_ns"]

    def test_trace_ids_are_unique_and_short(self):
        ids = {trace_mod.new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 for i in ids)

    def test_graft_attaches_worker_payloads(self):
        tracer = trace_mod.start_trace("parent")
        try:
            child_tracer = trace_mod.start_trace("worker")
            with trace_mod.span("match"):
                pass
            worker_payload = child_tracer.finish().to_payload()
        finally:
            pass
        trace_mod.graft_payloads([worker_payload, None])
        root = tracer.finish()
        names = [c["name"] for c in root.to_payload()["children"]]
        assert "worker" in names

    def test_chrome_trace_events_shape(self):
        tracer = trace_mod.start_trace("run")
        with trace_mod.span("parse"):
            pass
        payload = tracer.finish().to_payload()
        events = trace_mod.chrome_trace_events(payload)
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], (int, float))
            assert event["dur"] >= 0
        json.dumps(events)  # must be JSON-serializable as-is

    def test_phase_records_span_only_under_a_trace(self):
        tracer = trace_mod.start_trace("spanned")
        with registry_mod.phase("match"):
            pass
        root = tracer.finish().to_payload()
        assert [c["name"] for c in root["children"]] == ["match"]


# ---------------------------------------------------------------------------
# fork-boundary deltas
# ---------------------------------------------------------------------------

class TestTelemetryDeltas:
    def test_capture_sees_only_what_moved(self):
        counter = registry_mod.REGISTRY.counter("test_delta_total", "t")
        counter.inc(5)
        capture = telemetry_capture()
        counter.inc(3)
        delta = capture.delta()
        assert delta["counters"]["test_delta_total"] == 3

    def test_merge_lands_under_the_origin_label(self):
        merge_telemetry({"counters": {"test_merge_total": 4}},
                        origin="workers")
        child = registry_mod.REGISTRY.counter("test_merge_total",
                                              origin="workers")
        assert child.value >= 4

    def test_histogram_deltas_merge(self):
        histogram = registry_mod.REGISTRY.histogram(
            "test_hist_seconds", "t", buckets=(0.1, 1.0), phase="x")
        capture = telemetry_capture()
        histogram.observe(0.05)
        delta = capture.delta()
        assert delta["histograms"]['test_hist_seconds{phase="x"}'][
            "count"] == 1
        merge_telemetry(delta, origin="workers")
        merged = registry_mod.REGISTRY.histogram(
            "test_hist_seconds", buckets=(0.1, 1.0),
            phase="x", origin="workers")
        assert merged.state()["count"] == 1

    def test_split_key_round_trip(self):
        name, labels = registry_mod._split_key('a_total{x="1",y="z"}')
        assert name == "a_total" and labels == {"x": "1", "y": "z"}
        assert registry_mod._split_key("bare") == ("bare", {})


# ---------------------------------------------------------------------------
# journal sink
# ---------------------------------------------------------------------------

class TestJournal:
    def test_events_are_one_sorted_json_line_each(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(str(path)) as journal:
            journal.emit("request", verb="apply", ok=True, skipped=None)
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["event"] == "request" and record["verb"] == "apply"
        assert "skipped" not in record  # None fields are dropped
        assert "ts" in record

    def test_rotation_bounds_the_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(str(path), max_bytes=4096)
        for index in range(200):
            journal.emit("event", index=index, pad="x" * 64)
        journal.close()
        assert path.stat().st_size <= 4096
        rotated = tmp_path / "j.jsonl.1"
        assert rotated.exists() and rotated.stat().st_size <= 4096
        # every surviving line is whole (rotation never tears a record)
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_open_journal_none_for_unconfigured(self):
        assert journal_mod.open_journal(None) is None
        assert journal_mod.open_journal("") is None

    def test_unserializable_fields_drop_the_event_not_the_process(
            self, tmp_path):
        path = tmp_path / "j.jsonl"
        with Journal(str(path)) as journal:
            journal.emit("bad", payload=object())
            journal.emit("good")
        events = [json.loads(line)["event"]
                  for line in path.read_text().splitlines()]
        assert events == ["good"]


# ---------------------------------------------------------------------------
# HTTP /metrics endpoint
# ---------------------------------------------------------------------------

class TestMetricsServer:
    def test_scrape_and_healthz(self):
        registry = MetricsRegistry()
        registry.counter("scrape_total", "Scrapes", kind="test").inc(2)
        server = MetricsServer("127.0.0.1:0", registry=registry).start()
        try:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics") as response:
                assert response.status == 200
                assert "version=0.0.4" in response.headers["Content-Type"]
                text = response.read().decode()
            assert 'scrape_total{kind="test"} 2' in text
            with urllib.request.urlopen(f"{base}/healthz") as response:
                assert response.read() == b"ok\n"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{base}/nope")
        finally:
            server.close()

    def test_bad_address_is_a_value_error(self):
        with pytest.raises(ValueError):
            MetricsServer("not-an-address")


# ---------------------------------------------------------------------------
# daemon integration: metrics verb, trace echo, request journal
# ---------------------------------------------------------------------------

class TestDaemonTelemetry:
    @pytest.fixture()
    def daemon(self, tmp_path):
        from repro.server.daemon import PatchDaemon
        from repro.server.service import PatchService

        daemon = PatchDaemon(f"unix:{tmp_path}/obs.sock", PatchService(),
                             metrics="127.0.0.1:0",
                             journal=str(tmp_path / "journal.jsonl"))
        daemon.serve_in_thread()
        yield daemon
        daemon.shutdown()
        daemon.close()

    def test_metrics_verb_and_http_scrape_agree(self, daemon, tmp_path):
        from repro.server.client import RemoteClient

        with RemoteClient(daemon.address) as client:
            client.open_workspace("w")
            client.sync_files("w", files={"a.c": "int main(){f();}\n"})
            client.apply("w", [{"kind": "smpl",
                                "text": "@r@ @@\n- f();\n+ g();\n"}])
            verb_payload = client.request("metrics")
        assert verb_payload["enabled"]
        assert "repro_service_workspaces" in verb_payload["prometheus"]
        url = f"http://{daemon.metrics_server.address}/metrics"
        scraped = urllib.request.urlopen(url).read().decode()
        assert "# TYPE repro_phase_seconds histogram" in scraped
        assert "repro_service_requests_total" in scraped

    def test_trace_echoed_in_success_and_error_envelopes(self, daemon):
        from repro.server.client import RemoteClient, RemoteError

        with RemoteClient(daemon.address) as client:
            client.open_workspace("w")
            with pytest.raises(RemoteError) as excinfo:
                client.apply("no-such-workspace",
                             [{"kind": "cookbook", "name": "cuda_to_hip"}])
        assert excinfo.value.kind == "unknown-workspace"
        assert excinfo.value.trace  # the error envelope carries the id

    def test_journal_records_every_request_with_trace(self, daemon,
                                                      tmp_path):
        from repro.server.client import RemoteClient

        with RemoteClient(daemon.address) as client:
            client.ping()
            client.open_workspace("w")
        daemon.server.journal.close()
        events = [json.loads(line) for line in
                  (tmp_path / "journal.jsonl").read_text().splitlines()]
        verbs = [event["verb"] for event in events]
        assert "ping" in verbs and "open_workspace" in verbs
        assert all(event.get("trace") for event in events)
        assert all(event["ok"] for event in events)


# ---------------------------------------------------------------------------
# soundness: telemetry on vs. off is byte-identical
# ---------------------------------------------------------------------------

class TestTelemetryInertness:
    """The tentpole's acceptance property: diffs, result payloads and exit
    codes are byte-identical with telemetry on (default, plus an active
    trace) and off (``REPRO_OBS=0``), over real cookbook workloads."""

    NAMES = ("cuda_to_hip", "kokkos_lambda", "acc_to_omp")

    def _payload_bytes(self, name: str, jobs: int = 1) -> str:
        from repro.server.protocol import dumps, result_payload
        from test_prefilter import COOKBOOK_WORKLOADS, _cookbook_patch

        patch = _cookbook_patch(name)
        result = patch.apply(COOKBOOK_WORKLOADS[name](), jobs=jobs)
        return dumps(result_payload(result, [patch], include_texts=True))

    @pytest.mark.parametrize("name", NAMES)
    def test_cookbook_payloads_match(self, monkeypatch, name):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        tracer = trace_mod.start_trace("differential")
        try:
            with_telemetry = self._payload_bytes(name)
        finally:
            tracer.finish()
        monkeypatch.setenv("REPRO_OBS", "0")
        without = self._payload_bytes(name)
        assert with_telemetry == without

    def test_fork_pool_payloads_match(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        with_telemetry = self._payload_bytes("cuda_to_hip", jobs=2)
        monkeypatch.setenv("REPRO_OBS", "0")
        without = self._payload_bytes("cuda_to_hip", jobs=2)
        assert with_telemetry == without
