"""Differential tests: PatchSet batch application vs sequential chaining.

The pipeline's contract is that ``PatchSet([p1, ..., pn]).apply(cb)`` is
*byte-identical* to ``pn.apply(...p1.transform(cb)...)`` — per patch: the
same output texts **and** the same per-rule match reports, under every
configuration (prefilter on/off x jobs 1/4).  The baseline below is the most
vanilla sequential composition (serial, prefilter off == the seed engine
semantics); every pipeline configuration is compared against it, which also
proves the pipeline's own prefilter/jobs dimensions are behaviour-preserving.

Subsets are chosen to be ordering-sensible: patches whose targets overlap or
whose outputs feed the next patch (instrumented regions that then get
cloned, unroll chains, CUDA->HIP after kernel-launch rewrites, ...), plus
the whole 12-patch cookbook over a mixed tree.
"""

import pytest

from repro import CodeBase, PatchSet

from test_prefilter import _cookbook_patch


# ---------------------------------------------------------------------------
# workloads (kept tiny: every subset runs under 4 configurations)
# ---------------------------------------------------------------------------

def _mini(*parts) -> CodeBase:
    from repro.workloads import (cuda_app, gadget, kokkos_exercise,
                                 librsb_like, multiversion_app, openacc_app,
                                 openmp_kernels, rawloops, unrolled)

    generators = {
        "omp": lambda: openmp_kernels.generate(n_files=1, kernels_per_file=2,
                                               regions_per_file=2, seed=5),
        "gadget": lambda: gadget.generate(n_files=1, loops_per_file=2,
                                          grid_kernels_per_file=1, seed=5),
        "cuda": lambda: cuda_app.generate(n_files=1, seed=5),
        "acc": lambda: openacc_app.generate(n_files=1, loops_per_file=2, seed=5),
        "raw": lambda: rawloops.generate(n_files=1, searches_per_file=2,
                                         counters_per_file=1, seed=5),
        "unroll": lambda: unrolled.generate(n_files=1, unrolled_per_file=1,
                                            impostors_per_file=1, seed=5),
        "mv": lambda: multiversion_app.generate(n_files=1, clone_sets_per_file=1,
                                                seed=5),
        "rsb": lambda: librsb_like.generate(n_files=1, seed=5),
        "kokkos": lambda: kokkos_exercise.generate(n_files=1, seed=5),
    }
    files = {}
    for part in parts:
        for name, text in generators[part]().items():
            files[f"{part}/{name}"] = text
    return CodeBase.from_files(files)


ALL_COOKBOOK = ["likwid_instrumentation", "declare_variant",
                "target_multiversioning", "bloat_removal", "reroll_p0",
                "reroll_p1r1", "mdspan_multiindex", "cuda_to_hip",
                "acc_to_omp", "raw_loop_to_find", "kokkos_lambda",
                "gcc_workaround"]

#: subset name -> (patch names in order, workload parts)
SUBSETS = {
    # instrumented regions are then cloned into variants: insertion order
    # affects what the cloning rules see
    "instrument_then_clone": (["likwid_instrumentation", "declare_variant",
                               "target_multiversioning"], ("omp",)),
    # p0 strips unrolling pragmas that p1+r1's loop rewrite then matches
    "unroll_chain": (["reroll_p0", "reroll_p1r1"], ("unroll",)),
    # GPU translation chains over disjoint-but-interleaved files
    "gpu_translation": (["cuda_to_hip", "acc_to_omp"], ("cuda", "acc")),
    # cleanup patches whose guards/deps key off earlier output
    "cleanup": (["bloat_removal", "gcc_workaround", "raw_loop_to_find"],
                ("mv", "rsb", "raw")),
    # the full 12-patch cookbook over a mixed tree
    "full_cookbook": (ALL_COOKBOOK,
                      ("omp", "gadget", "cuda", "acc", "raw", "unroll", "mv",
                       "rsb", "kokkos")),
}

CONFIGS = [(True, 1), (False, 1), (True, 4), (False, 4)]


def _sequential_baseline(patches, codebase):
    """Chain ``patch.apply`` serially with the prefilter off — the seed
    semantics every configuration must reproduce byte-for-byte."""
    results = []
    current = codebase
    for patch in patches:
        result = patch.apply(current, jobs=1, prefilter=False)
        results.append(result)
        current = CodeBase(files={name: fr.text
                                  for name, fr in result.files.items()})
    return results, current


_BASELINES: dict = {}


def _baseline_for(subset: str):
    if subset not in _BASELINES:
        names, parts = SUBSETS[subset]
        patches = [_cookbook_patch(name) for name in names]
        codebase = _mini(*parts)
        results, final = _sequential_baseline(patches, codebase)
        _BASELINES[subset] = (patches, codebase, results, final)
    return _BASELINES[subset]


@pytest.mark.parametrize("prefilter,jobs", CONFIGS,
                         ids=[f"prefilter_{'on' if p else 'off'}-jobs{j}"
                              for p, j in CONFIGS])
@pytest.mark.parametrize("subset", sorted(SUBSETS))
def test_pipeline_matches_sequential_composition(subset, prefilter, jobs):
    patches, codebase, seq_results, seq_final = _baseline_for(subset)
    pipeline_result = PatchSet(patches).apply(codebase, jobs=jobs,
                                              prefilter=prefilter)

    # per patch: same texts and same per-rule reports, file by file
    assert len(pipeline_result.per_patch) == len(seq_results)
    for patch_index, (seq_result, pipe_result) in enumerate(
            zip(seq_results, pipeline_result.per_patch)):
        assert set(pipe_result.files) == set(seq_result.files)
        for filename in seq_result.files:
            context = (subset, patch_index, filename)
            assert pipe_result[filename].text == \
                seq_result[filename].text, context
            assert pipe_result[filename].rule_reports == \
                seq_result[filename].rule_reports, context

    # combined view: input order kept, final texts identical, matches add up
    assert list(pipeline_result.files) == list(codebase.files)
    for filename in codebase:
        assert pipeline_result[filename].text == seq_final[filename]
    assert pipeline_result.total_matches == \
        sum(result.total_matches for result in seq_results)
    # the pairing is meaningful: the subset actually transforms the workload
    assert pipeline_result.total_matches > 0
    assert pipeline_result.changed_files


def test_transform_chaining_forwards_jobs_and_prefilter():
    """Regression: ``SemanticPatch.transform`` used to drop ``jobs=`` /
    ``prefilter=``; chaining through it must honour them and stay identical
    to the default path."""
    patches, codebase, _seq_results, seq_final = _baseline_for("unroll_chain")
    current = codebase
    for patch in patches:
        current = patch.transform(current, jobs=2, prefilter=True)
    assert current.files == seq_final.files

    set_transformed = PatchSet(patches).transform(codebase, jobs=1,
                                                  prefilter=True)
    assert set_transformed.files == seq_final.files
