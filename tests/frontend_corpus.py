"""Shared fixtures for the machine-patch frontend suites.

One small deterministic C corpus plus one patch per frontend format, each
constructed so that its engine application is *semantically equal* to an
ordered list of exact ``(search, replacement)`` pairs — the contract the
:class:`repro.baselines.textual.ReferencePatcher` oracle implements.  The
differential tier asserts byte-identity between the two on the well-formed
corpus; the robustness tier then reformats the corpus so the oracle goes
blind while the frontends' whitespace-resilient locator still applies.
"""

import json

from repro import CodeBase, SemanticPatch
from repro.frontends import sha256_hex

#: the well-formed corpus: every snippet below appears verbatim, once
CORPUS = {
    "alpha.c": (
        "#include <stdio.h>\n"
        "\n"
        "static double legacy_scale(double value) {\n"
        "    return value * 2.0;\n"
        "}\n"
        "\n"
        "int main(void) {\n"
        "    double acc = 0.0;\n"
        "    for (int i = 0; i < 16; ++i) {\n"
        "        acc += legacy_scale((double) i);\n"
        "    }\n"
        "    printf(\"acc = %f\\n\", acc);\n"
        "    return 0;\n"
        "}\n"
    ),
    "beta.c": (
        "#include <stdlib.h>\n"
        "\n"
        "int *make_table(int n) {\n"
        "    int *table = malloc(n * sizeof(int));\n"
        "    for (int i = 0; i < n; ++i) {\n"
        "        table[i] = i * i;\n"
        "    }\n"
        "    return table;\n"
        "}\n"
    ),
}

#: the same programs, reformatted (2-space indent, spacing collapsed or
#: stretched) — exact search fails everywhere, resilient locating must not
REFORMATTED = {
    "alpha.c": (
        "#include <stdio.h>\n"
        "\n"
        "static double legacy_scale(double value)\n"
        "{\n"
        "  return value*2.0;\n"
        "}\n"
        "\n"
        "int main(void)\n"
        "{\n"
        "  double acc  =  0.0;\n"
        "  for (int i = 0; i < 16; ++i) {\n"
        "      acc += legacy_scale((double) i);\n"
        "  }\n"
        "  printf(\"acc = %f\\n\", acc);\n"
        "  return 0;\n"
        "}\n"
    ),
    "beta.c": (
        "#include <stdlib.h>\n"
        "\n"
        "int *make_table(int n)\n"
        "{\n"
        "  int *table = malloc( n * sizeof(int) );\n"
        "  for (int i = 0; i < n; ++i) {\n"
        "    table[i] = i*i;\n"
        "  }\n"
        "  return table;\n"
        "}\n"
    ),
}


def codebase() -> CodeBase:
    return CodeBase.from_files(CORPUS)


def reformatted_codebase() -> CodeBase:
    return CodeBase.from_files(REFORMATTED)


def _jsonops_text() -> str:
    return json.dumps([
        {"action": "replace", "search": "return value * 2.0;",
         "replace": "return value * 2.5;",
         "old_hash": sha256_hex("return value * 2.0;")[:12]},
        {"action": "replace", "search": "table[i] = i * i;",
         "replace": "table[i] = (i * i) + 1;", "file": "beta.c"},
    ], indent=1)


_AP_TEXT = """\
# ap-format machine patch over the frontend corpus
changes:
  - action: REPLACE
    anchor: |
      int main(void)
    snippet: |
      double acc = 0.0;
    with: |
      double acc = 1.0;
  - file: beta.c
    action: INSERT_AFTER
    snippet: '#include <stdlib.h>'
    with: '#include <string.h>'
"""

_BLOCKS_TEXT = """\
Explanatory prose between blocks is tolerated, like tool output has.

File: alpha.c
<<<<<<< SEARCH
    printf("acc = %f\\n", acc);
=======
    printf("sum = %f\\n", acc);
>>>>>>> REPLACE

<<<<<<< SEARCH
    return value * 2.0;
=======
    return value * 2.125;
>>>>>>> REPLACE
"""

#: patch source text per frontend format
PATCH_TEXTS = {
    "jsonops": _jsonops_text(),
    "ap": _AP_TEXT,
    "blocks": _BLOCKS_TEXT,
}

#: file name per format, matching the CLI auto-detection suffixes
PATCH_FILENAMES = {"jsonops": "ops.json", "ap": "edit.ap",
                   "blocks": "edit.blocks"}

#: the exact-replacement oracle equivalent of each patch, in order
REFERENCE_PAIRS = {
    "jsonops": [
        ("return value * 2.0;", "return value * 2.5;"),
        ("table[i] = i * i;", "table[i] = (i * i) + 1;"),
    ],
    "ap": [
        ("double acc = 0.0;\n", "double acc = 1.0;\n"),
        ("#include <stdlib.h>\n", "#include <stdlib.h>\n#include <string.h>\n"),
    ],
    "blocks": [
        ('    printf("acc = %f\\n", acc);\n', '    printf("sum = %f\\n", acc);\n'),
        ("    return value * 2.0;\n", "    return value * 2.125;\n"),
    ],
}


def frontend_patch(fmt: str) -> SemanticPatch:
    return SemanticPatch.from_text(PATCH_TEXTS[fmt], format=fmt,
                                   name=PATCH_FILENAMES[fmt])
