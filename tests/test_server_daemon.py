"""End-to-end tests for the daemon, the wire protocol and the remote CLI.

Everything here goes through real sockets (unix-domain by default, TCP
where noted): a daemon thread serves a :class:`PatchService`, clients
drive the JSON protocol, and parity is asserted against in-process runs —
the acceptance criterion being *byte-identical* texts, reports and exit
codes between server and local application, across prefilter on/off.
"""

import json
import os
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro import CodeBase, PatchSet, SemanticPatch
from repro.cli.spatch import main as spatch_main
from repro.server.client import ConnectionLost, RemoteClient, RemoteError
from repro.server.daemon import PatchDaemon
from repro.server.protocol import PROTOCOL_VERSION, result_payload
from repro.server.service import PatchService

RENAME_SMPL = "@r@ @@\n- old();\n+ new_call();\n"

FILES = {
    "a.c": "void f(void) { old(); }\n",
    "b.c": "int idle;\n",
}


def canonical(payload: dict) -> str:
    """The deterministic section of a result payload, as comparable bytes
    (the volatile profile section and the workspace echo stripped)."""
    trimmed = {key: value for key, value in payload.items()
               if key not in ("profile", "workspace")}
    return json.dumps(trimmed, sort_keys=True)


@pytest.fixture
def daemon(tmp_path):
    daemon = PatchDaemon(f"unix:{tmp_path}/spatchd.sock",
                         PatchService(max_workspaces=8))
    daemon.serve_in_thread()
    yield daemon
    daemon.shutdown()


def smpl_spec(text=RENAME_SMPL, name="inline"):
    return {"kind": "smpl", "name": name, "text": text}


class TestWireBasics:
    def test_ping_open_sync_apply_stats(self, daemon):
        with RemoteClient(daemon.address) as client:
            assert client.ping()["protocol"] == PROTOCOL_VERSION
            assert client.open_workspace("w")["created"]
            delta = client.sync_codebase("w", CodeBase.from_files(FILES))
            assert delta["files"] == 2 and delta["uploaded"] == 2
            payload = client.apply("w", [smpl_spec()])
            assert payload["exit_status"] == 0
            assert payload["files"]["a.c"]["changed"]
            stats = client.stats("w")
            assert stats["workspace"]["applies"] == 1

    def test_delta_sync_uploads_only_changes(self, daemon):
        codebase = CodeBase.from_files(FILES)
        with RemoteClient(daemon.address) as client:
            client.open_workspace("w")
            client.sync_codebase("w", codebase)
            # steady state: nothing re-uploads
            assert client.sync_codebase("w", codebase)["uploaded"] == 0
            codebase["a.c"] = FILES["a.c"] + "/* edit */\n"
            delta = client.sync_codebase("w", codebase)
            assert delta["uploaded"] == 1 and delta["changed"] == ["a.c"]

    def test_semantic_patch_objects_travel_as_smpl(self, daemon):
        patch = SemanticPatch.from_string(RENAME_SMPL, name="rename")
        with RemoteClient(daemon.address) as client:
            client.open_workspace("w")
            client.sync_codebase("w", CodeBase.from_files(FILES))
            payload = client.apply("w", [patch])
            assert payload["patches"] == ["rename"]
            assert payload["matched"]

    def test_unknown_verb_and_fields_are_reported(self, daemon):
        with RemoteClient(daemon.address) as client:
            with pytest.raises(RemoteError) as err:
                client.request("frobnicate")
            assert err.value.kind == "bad-verb"
            with pytest.raises(RemoteError) as err:
                client.request("ping", surprise=1)
            assert err.value.kind == "bad-request"
            with pytest.raises(RemoteError) as err:
                client.request("apply", workspace="w", patches=[smpl_spec()])
            assert err.value.kind == "unknown-workspace"

    def test_tcp_transport(self):
        daemon = PatchDaemon("127.0.0.1:0", PatchService())
        daemon.serve_in_thread()
        try:
            with RemoteClient(daemon.address) as client:
                client.open_workspace("w")
                client.sync_files("w", files=dict(FILES))
                payload = client.apply("w", [smpl_spec()])
                assert payload["exit_status"] == 0
        finally:
            daemon.shutdown()

    def test_shutdown_verb_stops_the_daemon(self, tmp_path):
        daemon = PatchDaemon(f"unix:{tmp_path}/down.sock", PatchService())
        thread = daemon.serve_in_thread()
        with RemoteClient(daemon.address) as client:
            assert client.shutdown()["stopping"]
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert not os.path.exists(f"{tmp_path}/down.sock")


class TestParityWithLocal:
    @pytest.mark.parametrize("prefilter", [True, False])
    def test_apply_payload_matches_local_run(self, daemon, prefilter):
        patch = SemanticPatch.from_string(RENAME_SMPL, name="inline")
        local = PatchSet([patch]).apply(CodeBase.from_files(FILES),
                                        prefilter=prefilter)
        local_payload = result_payload(local, [patch])
        with RemoteClient(daemon.address) as client:
            client.open_workspace("w")
            client.sync_codebase("w", CodeBase.from_files(FILES))
            remote = client.apply("w", [smpl_spec()], prefilter=prefilter)
            # a second, warm apply must serialize identically as well
            warm = client.apply("w", [smpl_spec()], prefilter=prefilter)
        assert canonical(remote) == canonical(local_payload)
        assert canonical(warm) == canonical(local_payload)

    def test_cli_diff_and_exit_code_parity(self, daemon, tmp_path, capsys):
        target = tmp_path / "proj"
        target.mkdir()
        (target / "code.c").write_text("void f(void) { old(); }\n")
        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_SMPL)

        rc_local = spatch_main(["--sp-file", str(cocci), str(target)])
        local_out = capsys.readouterr().out
        rc_remote = spatch_main(["--server", daemon.address,
                                 "--sp-file", str(cocci), str(target)])
        remote_out = capsys.readouterr().out
        assert rc_remote == rc_local == 0
        assert remote_out == local_out
        # warm second run: byte-identical again, and still exit 0
        rc_warm = spatch_main(["--server", daemon.address,
                               "--sp-file", str(cocci), str(target)])
        assert rc_warm == 0
        assert capsys.readouterr().out == local_out

    def test_cli_json_parity(self, daemon, tmp_path, capsys):
        (tmp_path / "code.c").write_text("void f(void) { old(); }\n")
        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_SMPL)
        args = ["--json", "--sp-file", str(cocci), str(tmp_path / "code.c")]

        assert spatch_main(args) == 0
        local_payload = json.loads(capsys.readouterr().out)
        assert spatch_main(["--server", daemon.address, *args]) == 0
        remote_payload = json.loads(capsys.readouterr().out)
        assert canonical(remote_payload) == canonical(local_payload)

    def test_cli_no_match_exit_parity(self, daemon, tmp_path, capsys):
        (tmp_path / "code.c").write_text("int nothing_here;\n")
        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_SMPL)
        rc_local = spatch_main(["--sp-file", str(cocci),
                                str(tmp_path / "code.c")])
        rc_remote = spatch_main(["--server", daemon.address, "--sp-file",
                                 str(cocci), str(tmp_path / "code.c")])
        capsys.readouterr()
        assert rc_local == rc_remote == 1

    def test_cli_in_place_parity(self, daemon, tmp_path, capsys):
        local_dir = tmp_path / "local"
        remote_dir = tmp_path / "remote"
        for directory in (local_dir, remote_dir):
            directory.mkdir()
            (directory / "code.c").write_text("void f(void) { old(); }\n")
        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_SMPL)
        assert spatch_main(["--sp-file", str(cocci), "--in-place",
                            str(local_dir)]) == 0
        assert spatch_main(["--server", daemon.address, "--sp-file",
                            str(cocci), "--in-place", str(remote_dir)]) == 0
        capsys.readouterr()
        assert (remote_dir / "code.c").read_text() \
            == (local_dir / "code.c").read_text()

    def test_cli_server_flag_conflicts(self, daemon, tmp_path):
        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_SMPL)
        for extra in (["--watch"], ["--incremental", str(tmp_path / "s")]):
            with pytest.raises(SystemExit):
                spatch_main(["--server", daemon.address, "--sp-file",
                             str(cocci), str(tmp_path), *extra])

    def test_cli_server_unreachable_exits_2(self, tmp_path, capsys):
        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_SMPL)
        (tmp_path / "code.c").write_text("int x;\n")
        rc = spatch_main(["--server", f"unix:{tmp_path}/no.sock",
                          "--sp-file", str(cocci), str(tmp_path / "code.c")])
        assert rc == 2
        assert "server" in capsys.readouterr().err


class TestFailureIsolation:
    def test_garbage_line_gets_error_then_connection_closes(self, daemon):
        family, target = ("unix", daemon.address[len("unix:"):]) \
            if daemon.address.startswith("unix:") else (None, None)
        sock = socket.socket(socket.AF_UNIX)
        sock.connect(target)
        sock.sendall(b"this is not json\n")
        response = sock.makefile("rb").readline()
        assert json.loads(response)["ok"] is False
        sock.close()

    def test_crash_mid_request_does_not_poison_the_workspace(self, daemon):
        with RemoteClient(daemon.address) as client:
            client.open_workspace("w")
            client.sync_codebase("w", CodeBase.from_files(FILES))
            reference = client.apply("w", [smpl_spec()])

        # a client dies mid-line: half a request, no newline, then gone
        target = daemon.address[len("unix:"):]
        for partial in (b'{"verb": "apply", "workspace": "w"',
                        b'{"verb": "sync_files", "workspace": "w", '
                        b'"files": {"a.c": "int'):
            sock = socket.socket(socket.AF_UNIX)
            sock.connect(target)
            sock.sendall(partial)
            sock.close()
        time.sleep(0.1)

        # other clients still get byte-identical, warm answers
        with RemoteClient(daemon.address) as client:
            after = client.apply("w", [smpl_spec()], profile=True)
            assert canonical(after) == canonical(reference)
            assert after["profile"]["incremental"]["files_reused"] \
                == len(FILES)

    def test_failing_request_leaves_others_running(self, daemon):
        with RemoteClient(daemon.address) as client:
            client.open_workspace("w")
            client.sync_files("w", files=dict(FILES))
            with pytest.raises(RemoteError):
                client.apply("w", [{"kind": "cookbook", "name": "no_such"}])
            # same connection keeps working after a failed request
            payload = client.apply("w", [smpl_spec()])
            assert payload["exit_status"] == 0


class TestConcurrentClients:
    def test_hammering_one_workspace_matches_serialized_results(self, daemon):
        """N threaded clients interleaving sync_files/apply against one
        workspace: every response must be byte-identical to the serialized
        reference — a torn read or lost update would change texts or
        reports."""
        with RemoteClient(daemon.address) as client:
            client.open_workspace("w")
            client.sync_codebase("w", CodeBase.from_files(FILES))
            reference = canonical(client.apply("w", [smpl_spec()]))

        payloads, errors = [], []

        def hammer():
            try:
                with RemoteClient(daemon.address) as client:
                    for _ in range(4):
                        client.sync_files("w", files=dict(FILES))
                        payloads.append(client.apply("w", [smpl_spec()]))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert len(payloads) == 16
        assert all(canonical(payload) == reference for payload in payloads)

    def test_two_state_hammering_never_shows_a_torn_mixture(self, daemon):
        """Clients alternate the workspace between two whole-tree states
        while others apply: every apply must equal the reference payload of
        state A or state B — anything else means a sync interleaved inside
        an apply."""
        state_a = dict(FILES)
        state_b = {"a.c": "void f(void) { old(); old(); }\n",
                   "b.c": "int idle;\n"}
        patch = SemanticPatch.from_string(RENAME_SMPL, name="inline")
        references = set()
        for state in (state_a, state_b):
            local = PatchSet([patch]).apply(CodeBase.from_files(state))
            references.add(canonical(result_payload(local, [patch])))

        with RemoteClient(daemon.address) as client:
            client.open_workspace("w")
            client.sync_files("w", files=state_a)

        payloads, errors = [], []

        def hammer(which):
            try:
                with RemoteClient(daemon.address) as client:
                    for _ in range(4):
                        client.sync_files("w", files=dict(which))
                        payloads.append(client.apply("w", [smpl_spec()]))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer,
                                    args=(state_a if index % 2 else state_b,))
                   for index in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert len(payloads) == 16
        for payload in payloads:
            assert canonical(payload) in references


class TestDaemonSubprocess:
    """The CI server-smoke path: a real ``repro-spatchd`` process."""

    def test_spawned_daemon_serves_and_shuts_down(self, tmp_path):
        sock = tmp_path / "smoke.sock"
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(root, "src"), env.get("PYTHONPATH", "")]).rstrip(
                os.pathsep)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli.spatchd",
             "--listen", f"unix:{sock}"],
            env=env, stderr=subprocess.PIPE, text=True)
        try:
            deadline = time.time() + 30.0
            while not sock.exists():
                assert process.poll() is None, process.stderr.read()
                assert time.time() < deadline, "daemon never bound its socket"
                time.sleep(0.05)
            (tmp_path / "code.c").write_text("void f(void) { old(); }\n")
            cocci = tmp_path / "r.cocci"
            cocci.write_text(RENAME_SMPL)
            with RemoteClient(f"unix:{sock}") as client:
                client.open_workspace("smoke")
                client.sync_files("smoke",
                                  files={"code.c": "void f(void) { old(); }\n"})
                payload = client.apply("smoke", [smpl_spec()])
                assert payload["exit_status"] == 0
                assert client.stats()["workspaces"] == 1
                client.shutdown()
            assert process.wait(timeout=15.0) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - failure path
                process.kill()
                process.wait()


class TestSpatchdCli:
    def test_main_serves_until_shutdown_verb(self, tmp_path, capsys):
        from repro.cli.spatchd import main as spatchd_main

        (tmp_path / "root" ).mkdir()
        (tmp_path / "root" / "x.c").write_text("void f(void) { old(); }\n")
        sock = tmp_path / "cli.sock"
        rc_holder = []

        def run():
            rc_holder.append(spatchd_main(
                ["--listen", f"unix:{sock}", "--max-workspaces", "4",
                 "--workspace-root", f"pre={tmp_path / 'root'}",
                 "--verbose"]))

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.time() + 15.0
        while not sock.exists():
            assert time.time() < deadline, "daemon never bound"
            time.sleep(0.02)
        with RemoteClient(f"unix:{sock}") as client:
            # the pre-opened workspace is queryable straight away
            payload = client.apply("pre", [smpl_spec()])
            assert payload["exit_status"] == 0
            client.shutdown()
        thread.join(timeout=10.0)
        assert rc_holder == [0]

    def test_bad_arguments_exit_2(self, tmp_path):
        from repro.cli.spatchd import main as spatchd_main

        with pytest.raises(SystemExit):
            spatchd_main(["--listen", f"unix:{tmp_path}/x.sock",
                          "--jobs", "lots"])
        with pytest.raises(SystemExit):
            spatchd_main(["--listen", f"unix:{tmp_path}/x.sock",
                          "--workspace-root", "missing-separator"])
        with pytest.raises(SystemExit):
            spatchd_main([])  # --listen is required

    def test_bad_listen_address_exits_2(self, tmp_path, capsys):
        from repro.cli.spatchd import main as spatchd_main

        assert spatchd_main(["--listen", "not-an-address"]) == 2
        assert "repro-spatchd" in capsys.readouterr().err
