"""Tests for engine building blocks: environments, edits, isomorphisms."""

import pytest

from repro.engine.bindings import BoundValue, Env, Position, EMPTY_ENV
from repro.engine.edits import EditSet, PLACE_INLINE, PLACE_NEWLINE_AFTER, PLACE_NEWLINE_BEFORE
from repro.errors import EditConflictError
from repro.lang.source import SourceFile
from repro.smpl.isomorphisms import (
    DEFAULT_ISOS, IsoConfig, commutative_swap, increment_variants,
    plus_zero_operand, strip_parens,
)
from repro.lang.parser import parse_source
from repro.lang import ast_nodes as A


class TestEnv:
    def test_bind_and_get(self):
        env = EMPTY_ENV.bind("x", BoundValue.for_name("identifier", "foo"))
        assert env is not None and env.get("x").text == "foo"
        assert "x" in env and len(env) == 1

    def test_conflicting_rebind_fails(self):
        env = EMPTY_ENV.bind("x", BoundValue.for_name("identifier", "foo"))
        assert env.bind("x", BoundValue.for_name("identifier", "bar")) is None

    def test_consistent_rebind_succeeds(self):
        env = EMPTY_ENV.bind("x", BoundValue.for_name("identifier", "foo"))
        assert env.bind("x", BoundValue.for_name("identifier", "foo")) is env

    def test_immutability(self):
        env = EMPTY_ENV.bind("x", BoundValue.for_name("identifier", "foo"))
        env.bind("y", BoundValue.for_name("identifier", "bar"))
        assert "y" not in env

    def test_position_equality(self):
        p1 = BoundValue.for_position(Position("f.c", 3, 4, 10))
        p2 = BoundValue.for_position(Position("f.c", 3, 4, 10))
        p3 = BoundValue.for_position(Position("f.c", 5, 0, 40))
        assert p1.equivalent(p2) and not p1.equivalent(p3)

    def test_exported_keys(self):
        env = EMPTY_ENV.bind("f", BoundValue.for_name("identifier", "foo"))
        exported = env.exported("cfe", ["f"])
        assert exported.get("cfe.f").text == "foo"
        assert exported.get("f").text == "foo"

    def test_locals_from_inherited(self):
        env = EMPTY_ENV.bind("cfe.fn", BoundValue.for_name("identifier", "curand"))
        seeded = env.locals_from_inherited({"fn": ("cfe", "fn")})
        assert seeded.get("fn").text == "curand"
        assert env.locals_from_inherited({"x": ("nope", "x")}) is None

    def test_bind_all_and_merge(self):
        env = EMPTY_ENV.bind_all({"a": BoundValue.for_name("identifier", "1"),
                                  "b": BoundValue.for_name("identifier", "2")})
        other = EMPTY_ENV.bind("c", BoundValue.for_name("identifier", "3"))
        merged = env.merged(other)
        assert set(merged) == {"a", "b", "c"}


class TestEditSet:
    def _edits(self, text):
        return EditSet(source=SourceFile(name="x.c", text=text))

    def test_simple_deletion(self):
        edits = self._edits("alpha beta gamma")
        edits.delete(6, 11)
        assert edits.apply() == "alpha gamma"

    def test_full_line_deletion_removes_line(self):
        edits = self._edits("keep1;\ndelete_me;\nkeep2;\n")
        edits.delete(7, 17)  # 'delete_me;'
        assert edits.apply() == "keep1;\nkeep2;\n"

    def test_partial_line_deletion_keeps_line(self):
        edits = self._edits("a = b + c;\n")
        edits.delete(4, 9)  # 'b + c'
        assert edits.apply() == "a = ;\n"

    def test_adjacent_deletions_merge(self):
        edits = self._edits("x = i+4-1 < n;\n")
        edits.delete(5, 6)   # '+'
        edits.delete(6, 7)   # '4'
        edits.delete(7, 8)   # '-'
        edits.delete(8, 9)   # '1'
        assert edits.apply() == "x = i < n;\n"

    def test_inline_insertion(self):
        edits = self._edits("f(a);\n")
        edits.delete(0, 1)
        edits.insert(1, ["g"], placement=PLACE_INLINE)
        assert edits.apply() == "g(a);\n"

    def test_newline_after_insertion(self):
        edits = self._edits("#include <omp.h>\nint a;\n")
        edits.insert(16, ["#include <likwid.h>"], placement=PLACE_NEWLINE_AFTER, indent="")
        assert edits.apply().splitlines()[1] == "#include <likwid.h>"

    def test_newline_before_insertion(self):
        edits = self._edits("    double f(void) { return 0; }\n")
        edits.insert(4, ["__attribute__((target))"],
                     placement=PLACE_NEWLINE_BEFORE, indent="    ")
        out = edits.apply()
        assert out.splitlines()[0].strip() == "__attribute__((target))"
        assert out.splitlines()[1].startswith("    double f")

    def test_insert_inside_deleted_region_is_relocated(self):
        edits = self._edits("    #pragma acc kernels\n    for (;;) x();\n")
        edits.delete(4, 23)
        edits.insert(23, ["#pragma omp target"], placement=PLACE_NEWLINE_AFTER, indent="    ")
        out = edits.apply()
        assert "#pragma acc" not in out
        assert out.splitlines()[0].strip() == "#pragma omp target"

    def test_duplicate_insertions_deduplicated(self):
        edits = self._edits("int a;\n")
        for _ in range(3):
            edits.insert(6, ["// note"], placement=PLACE_NEWLINE_AFTER)
        assert edits.apply().count("// note") == 1

    def test_summary_counts(self):
        edits = self._edits("abc def\n")
        edits.delete(0, 3)
        edits.insert(3, ["xyz"])
        summary = edits.summary()
        assert summary["deletions"] == 1 and summary["insertions"] == 1
        assert not edits.is_empty and len(edits) == 2

    def test_empty_editset_is_identity(self):
        text = "int unchanged;\n"
        assert self._edits(text).apply() == text


class TestIsomorphisms:
    def _expr(self, text):
        tree = parse_source(f"int f(void) {{ return {text}; }}", "t.c")
        ret = tree.unit.decls[0].body.stmts[0]
        return ret.value

    def test_strip_parens(self):
        node = self._expr("((a))")
        assert isinstance(strip_parens(node), A.Ident)
        assert isinstance(strip_parens(node, IsoConfig.all_disabled()), A.Paren)

    def test_plus_zero(self):
        node = self._expr("i + 0")
        base = plus_zero_operand(node)
        assert isinstance(base, A.Ident) and base.name == "i"
        assert plus_zero_operand(self._expr("i + 1")) is None
        assert plus_zero_operand(node, IsoConfig.all_disabled()) is None

    def test_commutative_swap(self):
        node = self._expr("k == elem")
        swapped = commutative_swap(node)
        assert swapped.left.name == "elem"
        assert commutative_swap(self._expr("a - b")) is None

    def test_increment_variants(self):
        plusplus = self._expr("i++")
        variants = increment_variants(plusplus)
        assert any(isinstance(v, A.Assignment) and v.op == "+=" for v in variants)
        pluseq = self._expr("i += 1")
        assert any(isinstance(v, A.UnaryOp) for v in increment_variants(pluseq))
        assert increment_variants(self._expr("i += 4")) == []
