"""Tests for statement parsing."""

import pytest

from repro.errors import CParseError
from repro.lang import ast_nodes as A
from repro.lang.lexer import Lexer
from repro.lang.parser import CParser
from repro.lang.source import SourceFile
from repro.options import SpatchOptions


def parse_stmts(text: str, cxx: bool = False, metavars=None, tolerant=False):
    src = SourceFile(name="<stmts>", text=text)
    tokens = Lexer(src, smpl_mode=metavars is not None).tokenize()
    options = SpatchOptions(cxx=17) if cxx else SpatchOptions()
    parser = CParser(tokens, src, options=options, metavars=metavars, tolerant=tolerant)
    return parser.parse_statement_list()


class TestControlFlow:
    def test_if_else(self):
        (stmt,) = parse_stmts("if (a > b) x = a; else x = b;")
        assert isinstance(stmt, A.IfStmt)
        assert stmt.orelse is not None

    def test_nested_if(self):
        (stmt,) = parse_stmts("if (a) if (b) c = 1;")
        assert isinstance(stmt.then, A.IfStmt)

    def test_classic_for(self):
        (stmt,) = parse_stmts("for (int i = 0; i < n; ++i) { s += a[i]; }")
        assert isinstance(stmt, A.ForStmt)
        assert isinstance(stmt.init, A.DeclStmt)
        assert isinstance(stmt.body, A.CompoundStmt)

    def test_for_with_expression_init(self):
        (stmt,) = parse_stmts("for (i = 0; i < n; i += 4) total += a[i];")
        assert isinstance(stmt.init, A.ExprStmt)
        assert isinstance(stmt.step, A.Assignment)

    def test_for_empty_clauses(self):
        (stmt,) = parse_stmts("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_for_comma_step(self):
        (stmt,) = parse_stmts("for (i = 0; i < n; i++, j--) x = i;")
        assert isinstance(stmt.step, A.CommaExpr)

    def test_while_and_do(self):
        stmts = parse_stmts("while (n > 0) n--; do { n++; } while (n < 10);")
        assert isinstance(stmts[0], A.WhileStmt)
        assert isinstance(stmts[1], A.DoWhileStmt)

    def test_range_for_cxx(self):
        (stmt,) = parse_stmts("for (int &v : values) v = 0;", cxx=True)
        assert isinstance(stmt, A.RangeForStmt)
        assert stmt.reference and stmt.var == "v"

    def test_return_break_continue(self):
        stmts = parse_stmts("return a + b; break; continue; return;")
        assert isinstance(stmts[0], A.ReturnStmt) and stmts[0].value is not None
        assert isinstance(stmts[1], A.BreakStmt)
        assert isinstance(stmts[2], A.ContinueStmt)
        assert stmts[3].value is None


class TestDeclarations:
    def test_simple_declaration(self):
        (stmt,) = parse_stmts("double acc = 0.0;")
        assert isinstance(stmt, A.DeclStmt)
        decl = stmt.decl
        assert decl.type.text == "double"
        assert decl.declarators[0].name == "acc"
        assert isinstance(decl.declarators[0].init, A.Literal)

    def test_multiple_declarators(self):
        (stmt,) = parse_stmts("int i = 0, j = 1, k;")
        assert [d.name for d in stmt.decl.declarators] == ["i", "j", "k"]

    def test_pointer_declarator(self):
        (stmt,) = parse_stmts("double *p = x;")
        assert stmt.decl.declarators[0].pointer == "*"

    def test_array_declarator(self):
        (stmt,) = parse_stmts("double buf[128];")
        assert len(stmt.decl.declarators[0].arrays) == 1

    def test_unknown_type_ident_ident(self):
        (stmt,) = parse_stmts("curandState st;")
        assert isinstance(stmt, A.DeclStmt)
        assert stmt.decl.type.text == "curandState"

    def test_underscore_t_suffix_recognised_as_type(self):
        (stmt,) = parse_stmts("cudaStream_t stream;")
        assert isinstance(stmt, A.DeclStmt)

    def test_init_list(self):
        (stmt,) = parse_stmts("double v[3] = {1.0, 2.0, 3.0};")
        assert isinstance(stmt.decl.declarators[0].init, A.InitList)

    def test_constructor_style_initialisation_cxx(self):
        (stmt,) = parse_stmts("dim3 grid(n / 256);", cxx=True)
        assert isinstance(stmt, A.DeclStmt)


class TestPragmasAndMisc:
    def test_pragma_statement(self):
        stmts = parse_stmts("#pragma omp parallel for\nfor (i = 0; i < n; i++) x = i;")
        assert isinstance(stmts[0], A.PragmaDirective)
        assert stmts[0].text.startswith("omp parallel for")

    def test_empty_statement(self):
        (stmt,) = parse_stmts(";")
        assert isinstance(stmt, A.EmptyStmt)

    def test_expression_statement_requires_semicolon(self):
        with pytest.raises(CParseError):
            parse_stmts("a + b")

    def test_tolerant_recovery_produces_raw_stmt(self):
        src = SourceFile(name="<t>", text="void f() { switch (x) { case 1: break; } y = 1; }")
        tokens = Lexer(src).tokenize()
        parser = CParser(tokens, src, tolerant=True)
        tree = parser.parse_translation_unit()
        fn = tree.unit.decls[0]
        kinds = [type(s).__name__ for s in fn.body.stmts]
        assert "RawStmt" in kinds
        assert kinds[-1] == "ExprStmt"  # parsing resumes after recovery


class TestPatternModeStatements:
    MVS = {"A": "statement", "SL": "statement list", "i": "identifier",
           "T": "type", "fc": "statement", "p": "position", "n": "expression",
           "c": "identifier"}

    def test_statement_metavariable(self):
        (stmt,) = parse_stmts("A", metavars=self.MVS)
        assert isinstance(stmt, A.MetaStmt) and stmt.name == "A"

    def test_statement_list_in_braces(self):
        (stmt,) = parse_stmts("{ SL }", metavars=self.MVS)
        assert isinstance(stmt.stmts[0], A.MetaStmtList)

    def test_dots_statement(self):
        stmts = parse_stmts("{ ... }", metavars=self.MVS)
        assert isinstance(stmts[0].stmts[0], A.DotsStmt)

    def test_for_with_dots_clauses(self):
        (stmt,) = parse_stmts("for (...;c<n;...) fc", metavars=self.MVS)
        assert isinstance(stmt, A.ForStmt)
        assert isinstance(stmt.init, A.DotsExpr)
        assert isinstance(stmt.step, A.DotsExpr)
        assert isinstance(stmt.body, A.MetaStmt)

    def test_statement_conjunction_with_position(self):
        text = "(\nfc@p\n&\nfor (...;c<n;...) A\n)"
        src = SourceFile(name="<p>", text=text)
        from repro.lang.lexer import TokenKind
        tokens = Lexer(src, smpl_mode=True).tokenize()
        marker = {"(": TokenKind.DISJ_OPEN, "&": TokenKind.CONJ_AND, ")": TokenKind.DISJ_CLOSE}
        lines = text.split("\n")
        for t in tokens:
            if t.kind is TokenKind.PUNCT and lines[t.line - 1].strip() == t.value \
                    and t.value in marker:
                t.kind = marker[t.value]
        parser = CParser(tokens, src, metavars=self.MVS, tolerant=False)
        (stmt,) = parser.parse_statement_list()
        assert isinstance(stmt, A.Conjunction)
        assert isinstance(stmt.branches[0], A.MetaStmt)
        assert stmt.branches[0].pos_metavars == ("p",)
