"""Tests for ``repro-spatch --json`` and the shared result serialization.

The ``--json`` payload *is* the server protocol's apply response (minus
the workspace echo): one schema, produced by
:func:`repro.server.protocol.result_payload`, so most parity coverage
lives in ``test_server_daemon.py`` — here we pin the local semantics:
schema shape, exit-status agreement, determinism across prefilter on/off
and incremental warm runs, and the ``--profile`` counter surfacing.
"""

import json

import pytest

from repro import CodeBase, PatchSet, SemanticPatch
from repro.cli.spatch import main as spatch_main
from repro.server.protocol import RESULT_SCHEMA, result_payload

RENAME_SMPL = "@r@ @@\n- old();\n+ new_call();\n"


@pytest.fixture
def project(tmp_path):
    (tmp_path / "hit.c").write_text("void f(void) { old(); }\n")
    (tmp_path / "miss.c").write_text("int unrelated;\n")
    cocci = tmp_path / "r.cocci"
    cocci.write_text(RENAME_SMPL)
    return tmp_path, cocci


def run_json(capsys, argv):
    rc = spatch_main(argv)
    out = capsys.readouterr().out
    return rc, json.loads(out)


class TestJsonFlag:
    def test_schema_and_contents(self, project, capsys):
        tmp_path, cocci = project
        rc, payload = run_json(capsys, ["--json", "--sp-file", str(cocci),
                                        str(tmp_path)])
        assert rc == 0
        assert payload["schema"] == RESULT_SCHEMA
        assert payload["exit_status"] == 0 and payload["matched"]
        assert payload["patches"] == ["r.cocci"]
        assert payload["summary"]["changed_files"] == 1
        hit = payload["files"][str(tmp_path / "hit.c")]
        assert hit["changed"] and hit["matches"] == 1
        (rule_row,) = hit["rules"]
        assert rule_row["rule"] == "r" and rule_row["matches"] == 1
        assert rule_row["deletions"] > 0 and rule_row["insertions"] > 0
        assert "new_call" in hit["diff"]
        miss = payload["files"][str(tmp_path / "miss.c")]
        assert not miss["changed"] and "diff" not in miss
        assert payload["per_patch"][0]["patch"] == "r.cocci"
        assert "profile" not in payload  # volatile bits only on request

    def test_exit_status_agreement_on_no_match(self, tmp_path, capsys):
        (tmp_path / "code.c").write_text("int nothing;\n")
        cocci = tmp_path / "r.cocci"
        cocci.write_text(RENAME_SMPL)
        rc, payload = run_json(capsys, ["--json", "--sp-file", str(cocci),
                                        str(tmp_path)])
        assert rc == 1
        assert payload["exit_status"] == 1 and not payload["matched"]

    def test_deterministic_across_prefilter_toggle(self, project, capsys):
        tmp_path, cocci = project
        _, on = run_json(capsys, ["--json", "--sp-file", str(cocci),
                                  str(tmp_path)])
        _, off = run_json(capsys, ["--json", "--sp-file", str(cocci),
                                   "--no-prefilter", str(tmp_path)])
        assert json.dumps(on, sort_keys=True) == json.dumps(off,
                                                            sort_keys=True)

    def test_deterministic_across_incremental_warm_run(self, project,
                                                       capsys):
        tmp_path, cocci = project
        state = tmp_path / ".state"
        argv = ["--json", "--sp-file", str(cocci), "--incremental",
                str(state), str(tmp_path)]
        _, cold = run_json(capsys, argv)
        _, warm = run_json(capsys, argv)  # splices everything
        assert json.dumps(cold, sort_keys=True) == json.dumps(warm,
                                                              sort_keys=True)

    def test_profile_section_carries_counters(self, project, capsys):
        tmp_path, cocci = project
        rc = spatch_main(["--json", "--profile", "--sp-file", str(cocci),
                          str(tmp_path)])
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert rc == 0
        profile = payload["profile"]
        assert profile["stats"]["files_total"] == 2
        assert {"hits", "misses", "dedup_waits", "evictions"} \
            <= set(profile["parse_cache"])
        assert profile["token_index"]["scan_misses"] >= 1
        # the human-readable --profile lines surface the same counters
        assert "parse cache (process):" in captured.err
        assert "token index:" in captured.err

    def test_pipeline_payload_has_per_patch_rows(self, tmp_path, capsys):
        (tmp_path / "a.c").write_text("void f(void) { old(); gone(); }\n")
        one = tmp_path / "one.cocci"
        one.write_text(RENAME_SMPL)
        two = tmp_path / "two.cocci"
        two.write_text("@s@ @@\n- gone();\n+ kept();\n")
        rc, payload = run_json(capsys, ["--json", "--sp-file", str(one),
                                        "--sp-file", str(two),
                                        str(tmp_path)])
        assert rc == 0
        assert [row["patch"] for row in payload["per_patch"]] \
            == ["one.cocci", "two.cocci"]
        assert all(row["matches"] == 1 for row in payload["per_patch"])
        rules = [r["rule"]
                 for r in payload["files"][str(tmp_path / "a.c")]["rules"]]
        assert rules == ["r", "s"]

    def test_json_watch_conflict(self, project):
        tmp_path, cocci = project
        with pytest.raises(SystemExit):
            spatch_main(["--json", "--watch", "--sp-file", str(cocci),
                         str(tmp_path)])

    def test_json_in_place_rewrites_and_reports(self, project, capsys):
        tmp_path, cocci = project
        rc, payload = run_json(capsys, ["--json", "--in-place", "--sp-file",
                                        str(cocci), str(tmp_path)])
        assert rc == 0
        assert "new_call" in (tmp_path / "hit.c").read_text()
        assert payload["summary"]["changed_files"] == 1


class TestResultPayloadApi:
    def test_single_patch_result_serializes_like_pipeline(self):
        files = {"a.c": "void f(void) { old(); }\n"}
        patch = SemanticPatch.from_string(RENAME_SMPL, name="inline")
        single = patch.apply(CodeBase.from_files(files))
        pipeline = PatchSet([patch]).apply(CodeBase.from_files(files))
        assert json.dumps(result_payload(single, [patch]), sort_keys=True) \
            == json.dumps(result_payload(pipeline, [patch]), sort_keys=True)

    def test_surrogate_bytes_survive_the_json_round_trip(self):
        # Latin-1 comment bytes load as lone surrogates; the payload must
        # carry them through dumps/loads unchanged (ensure_ascii escapes)
        text = "int x; /* caf\udce9 */ void f(void) { old(); }\n"
        patch = SemanticPatch.from_string(RENAME_SMPL, name="inline")
        result = patch.apply(CodeBase.from_files({"a.c": text}))
        payload = result_payload(result, [patch], include_texts=True)
        line = json.dumps(payload, sort_keys=True, ensure_ascii=True)
        restored = json.loads(line)
        assert restored["files"]["a.c"]["text"] \
            == result.files["a.c"].text
        assert "\udce9" in restored["files"]["a.c"]["text"]
