"""Tests for the matching engine (expression/statement/toplevel patterns,
metavariable binding, dots, disjunction/conjunction, constraints)."""

import pytest

from repro.engine.bindings import EMPTY_ENV
from repro.engine.matcher import Matcher
from repro.lang.parser import parse_source
from repro.options import SpatchOptions
from repro.smpl.parser import parse_semantic_patch


def match_rule(patch_text: str, code: str, rule_index: int = 0, cxx=False, env=EMPTY_ENV):
    patch = parse_semantic_patch(patch_text)
    options = patch.options if patch.options.cxx else (SpatchOptions(cxx=17) if cxx else patch.options)
    rule = patch.patch_rules()[rule_index]
    tree = parse_source(code, "m.c", options=options)
    return Matcher(rule, tree, options=options).match_all(env), tree


class TestExpressionPatterns:
    def test_chained_subscript_binds_metavars(self):
        patch = "@r@\nsymbol a;\nexpression x,y,z;\n@@\n- a[x][y][z]\n+ a[x, y, z]\n"
        code = "void f(void) { b = a[i+1][j][k] * a[0][0][0]; c = d[i][j][k]; }"
        insts, tree = match_rule(patch, code)
        assert len(insts) == 2  # only the array literally named 'a'
        bound = sorted(inst.env.get("x").text for inst in insts)
        assert bound == ["0", "i + 1"]

    def test_metavariable_consistency_within_a_match(self):
        patch = "@r@\nexpression E;\n@@\n- f(E, E)\n+ g(E)\n"
        code = "void h(void) { f(a, a); f(a, b); }"
        insts, _ = match_rule(patch, code)
        assert len(insts) == 1

    def test_constant_value_set(self):
        patch = "@r@\nconstant k={4};\nidentifier i;\n@@\n- i+k\n+ i\n"
        code = "void f(void) { x = n+4; y = n+8; }"
        insts, _ = match_rule(patch, code)
        assert len(insts) == 1

    def test_regex_constraint_on_identifier(self):
        patch = '@r@\nidentifier f =~ "^cuda";\nexpression list el;\n@@\nf(el)\n'
        code = "void g(void) { cudaMalloc(&p, n); memset(p, 0, n); cudaFree(p); }"
        insts, _ = match_rule(patch, code)
        assert sorted(i.env.get("f").text for i in insts) == ["cudaFree", "cudaMalloc"]

    def test_kernel_launch_pattern(self):
        patch = ("@r@\nidentifier k;\nexpression b,t;\nexpression list el;\n@@\n"
                 "- k<<<b,t>>>(el)\n+ hipLaunchKernelGGL(k,b,t,el)\n")
        code = "void f(void) { saxpy<<<grid, 256>>>(x, y, n); }"
        insts, _ = match_rule(patch, code, cxx=True)
        assert len(insts) == 1
        assert insts[0].env.get("el").render().replace(" ", "") == "x,y,n"

    def test_commutative_isomorphism(self):
        patch = "@r@\nidentifier v;\nconstant k;\n@@\nv == k\n"
        code = "void f(void) { if (x == 3) a(); if (4 == y) b(); if (x != 3) c(); }"
        insts, _ = match_rule(patch, code)
        assert len(insts) == 2

    def test_plus_zero_isomorphism(self):
        patch = "@r@\nidentifier i;\n@@\ny[i+0]\n"
        code = "void f(void) { q = y[i]; r = y[j+0]; }"
        insts, _ = match_rule(patch, code)
        assert len(insts) == 2

    def test_position_binding(self):
        patch = "@r@\nidentifier f;\nexpression list el;\nposition p;\n@@\nf@p(el)\n"
        code = "void g(void) {\n  work(1);\n}\n"
        insts, _ = match_rule(patch, code)
        pos = insts[0].env.get("p").position
        assert pos.line == 2


class TestStatementPatterns:
    def test_pragma_prefix_dots(self):
        patch = "@r@ @@\n#pragma omp ...\n{\n...\n}\n"
        code = ("void f(void) {\n#pragma omp parallel\n{ x = 1; }\n"
                "#pragma acc kernels\n{ y = 2; }\n}\n")
        insts, _ = match_rule(patch, code)
        assert len(insts) == 1

    def test_pragmainfo_binding(self):
        patch = "@r@\npragmainfo pi;\n@@\n#pragma acc pi\n"
        code = "void f(void) {\n#pragma acc parallel loop copyin(x)\nfor (;;) g();\n}\n"
        insts, _ = match_rule(patch, code)
        assert insts[0].env.get("pi").text == "parallel loop copyin(x)"

    def test_sequence_with_dots_between_statements(self):
        patch = ("@r@\nidentifier flag;\n@@\n- bool flag = false;\n...\n- flag = true;\n")
        code = ("void f(void) { bool seen = false; int other = 0; count(); "
                "seen = true; use(seen); }")
        insts, _ = match_rule(patch, code)
        assert len(insts) == 1
        assert insts[0].env.get("flag").text == "seen"

    def test_statement_metavariable_and_conjunction(self):
        patch = ("@r@\nstatement A;\nidentifier i;\n@@\n"
                 "for (...; i < 4; ...)\n{\n\\( A \\& i+1 \\)\n}\n")
        code = ("void f(void) { for (int i = 0; i < 4; ++i) { y[i+1] = x[i+1]; } "
                "for (int j = 0; j < 4; ++j) { y[j] = x[j]; } }")
        insts, _ = match_rule(patch, code)
        assert len(insts) == 1

    def test_compound_anchored_at_both_ends(self):
        patch = "@r@\nidentifier r;\n@@\nif (...)\n{\n...\nr = true;\nbreak;\n}\n"
        code = ("void f(void) { for (;;) { if (q == 1) { log(); ok = true; break; } } "
                "for (;;) { if (q == 2) { ok = true; break; extra(); } } }")
        insts, _ = match_rule(patch, code)
        assert len(insts) == 1  # the second if does not END with the pattern

    def test_include_pattern_matches_toplevel(self):
        patch = "@r@ @@\n#include <omp.h>\n"
        code = "#include <stdio.h>\n#include <omp.h>\nint x;\n"
        insts, _ = match_rule(patch, code)
        assert len(insts) == 1

    def test_declaration_pattern_matches_globals_and_locals(self):
        patch = "@r@\ntype c_t;\nidentifier i;\n@@\n- curandState i;\n"
        code = "curandState g;\nvoid f(void) { curandState s; double d; }\n"
        insts, _ = match_rule(patch, code)
        assert len(insts) == 2


class TestToplevelPatterns:
    def test_function_pattern_with_regex(self):
        patch = ('@r@\ntype T;\nidentifier f =~ "kernel";\nparameter list PL;\n'
                 "statement list SL;\n@@\nT f (PL) { SL }\n")
        code = ("double norm_kernel(const double *x, int n) { return x[0]; }\n"
                "void helper(double *x) { x[0] = 1.0; }\n")
        insts, _ = match_rule(patch, code)
        assert len(insts) == 1
        env = insts[0].env
        assert env.get("T").text == "double"
        assert "const double" in env.get("PL").text

    def test_attribute_pattern_with_dots_args(self):
        patch = ('@r@\nidentifier f;\ntype T;\n@@\n'
                 '__attribute__((target(...,"avx512",...)))\nT f(...)\n{\n...\n}\n')
        code = ('__attribute__((target("avx512")))\nint a(int x) { return x; }\n'
                '__attribute__((target("avx2")))\nint b(int x) { return x; }\n')
        insts, _ = match_rule(patch, code)
        assert [i.env.get("f").text for i in insts] == ["a"]

    def test_specifier_in_pattern_restricts_match(self):
        patch = "@r@\nexpression N;\n@@\n- extern struct particle P[N];\n"
        code = ("struct particle { double m; };\nextern struct particle P[64];\n"
                "struct particle Q[64];\n")
        insts, _ = match_rule(patch, code)
        assert len(insts) == 1

    def test_inherited_environment_constrains_match(self):
        patch = "@r@\nidentifier f;\n@@\n- f(1)\n+ f(2)\n"
        code = "void g(void) { alpha(1); beta(1); }"
        from repro.engine.bindings import BoundValue
        env = EMPTY_ENV.bind("f", BoundValue.for_name("identifier", "beta"))
        insts, _ = match_rule(patch, code, env=env)
        assert len(insts) == 1


class TestDisjunction:
    def test_expression_disjunction_ordered(self):
        patch = "@r@\nidentifier e;\nconstant k;\n@@\n\\( e == k \\| k == e \\)\n"
        code = "void f(void) { if (v == 3) a(); if (9 == w) b(); }"
        insts, _ = match_rule(patch, code)
        assert len(insts) == 2

    def test_statement_disjunction_first_branch_wins(self):
        patch = ("@r@\nstatement fc;\n@@\n(\nfc\n&\n(\n"
                 "- for (...;...;...) { ... result += ...; }\n"
                 "+ parallel_reduce();\n|\n- for (...;...;...) { ... }\n"
                 "+ parallel_for();\n)\n)\n")
        code = ("void f(int n) { for (int i=0;i<n;++i) { result += x[i]; } "
                "for (int j=0;j<n;++j) { y[j] = 0; } }")
        patchobj = parse_semantic_patch(patch)
        result_text = None
        from repro import SemanticPatch
        res = SemanticPatch(patchobj).apply_to_source(code)
        assert "parallel_reduce();" in res.text
        assert "parallel_for();" in res.text
