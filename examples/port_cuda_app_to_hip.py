#!/usr/bin/env python3
"""Scenario: port a CUDA mini-application to HIP and compare the semantic
patch against a hipify-perl-style textual tool on adversarial code
(multi-line kernel launches, API names inside strings and comments).

Run with:  python examples/port_cuda_app_to_hip.py
"""

from repro.analysis import format_table, robustness_cuda
from repro.baselines import HipifyTextual
from repro.cookbook import cuda_hip
from repro.workloads import cuda_app


def main() -> None:
    codebase = cuda_app.generate(n_files=2, drivers_per_file=3, adversarial=True, seed=7)
    print(f"CUDA workload: {len(codebase)} files, {codebase.loc()} LoC, "
          f"{cuda_app.kernel_launch_count(codebase)} kernel launches, "
          f"{cuda_app.cuda_call_count(codebase)} runtime/cuRAND call sites")

    # semantic translation: headers, types, functions, chevron launches
    patch = cuda_hip.cuda_to_hip_patch()
    hip = patch.transform(codebase)
    print("\n--- semantic patch (excerpt of the first driver) ---")
    first = hip[sorted(hip.names())[0]]
    print("\n".join(line for line in first.splitlines()
                    if "hip" in line or "Launch" in line)[:800])

    # the textual baseline on the same input
    textual = HipifyTextual().run(codebase)
    print(f"\ntextual tool made {textual.replacements} replacements")

    rows = robustness_cuda(codebase)
    print("\n--- robustness comparison (experiment Q2a) ---")
    print(format_table(rows, columns=["tool", "intended", "converted", "missed",
                                      "spurious", "broken", "correct"]))

    remaining = sum(text.count("<<<") for text in hip.files.values())
    print(f"\nsemantic result: {remaining} untranslated launches, strings/comments intact")


if __name__ == "__main__":
    main()
