#!/usr/bin/env python3
"""Quickstart: write a semantic patch, apply it to C code, inspect the diff.

Run with:  python examples/quickstart.py
"""

from repro import CodeBase, SemanticPatch

# A semantic patch in SmPL: metavariables make one rule generic enough to
# rewrite every call site of the old API, whatever its arguments are.
PATCH = """\
@upgrade@
expression list args;
@@
- legacy_dgemm(args)
+ blas::gemm(args)

@header depends on upgrade@
@@
#include <stdio.h>
+ #include <blas/blas.hh>
"""

CODE = """\
#include <stdio.h>

void solve(double *A, double *B, double *C, int n) {
    legacy_dgemm(A, B, C, n, n, n);
    printf("done\\n");
}

void precondition(double *M, int n) {
    legacy_dgemm(M, M, M, n, n, n);
}
"""


def main() -> None:
    patch = SemanticPatch.from_string(PATCH, name="quickstart")
    print(patch.describe())
    print()

    # single file ----------------------------------------------------------
    result = patch.apply_to_source(CODE, filename="solver.c")
    print(result.diff())

    # whole code base -------------------------------------------------------
    codebase = CodeBase.from_files({"solver.c": CODE, "other.c": "int unrelated;\n"})
    report = patch.apply(codebase)
    print("summary:", report.summary())
    for file_result in report.changed_files:
        print(f"  {file_result.filename}: "
              f"{[ (r.rule, r.matches) for r in file_result.rule_reports ]}")


if __name__ == "__main__":
    main()
