#!/usr/bin/env python3
"""Scenario: the paper's motivating case study — regenerate an SoA variant of
a GADGET-like AoS particle code on demand ("replayable refactoring"), derive
the rules from the code's own declarations, and check behaviour equivalence.

Run with:  python examples/aos_to_soa_gadget.py
"""

from repro.cookbook import aos_soa
from repro.eval import Interpreter, compare_aos_soa
from repro.workloads import gadget


def main() -> None:
    codebase = gadget.generate(n_files=3, loops_per_file=6, seed=11)
    print(f"GADGET-like workload: {len(codebase)} files, {codebase.loc()} LoC, "
          f"{gadget.aos_access_count(codebase)} AoS member accesses")

    # the rules are derived from the struct definition + global array found in
    # the code base itself (the 'production' refinement the paper recommends)
    spec = aos_soa.derive_spec(codebase, struct_name="particle")
    print("derived spec:", spec.struct_name, spec.array_name,
          [(f.ctype, f.name, f.inner_dim) for f in spec.fields])

    patch = aos_soa.aos_to_soa_patch(spec)
    print(f"generated semantic patch: {len(patch.rule_names)} rules, {patch.loc()} lines")

    soa = patch.transform(codebase)
    print("remaining AoS accesses after transformation:", gadget.aos_access_count(soa))
    print("\n--- globals.c after the transformation ---")
    print(soa["globals.c"])

    # behaviour check: seed both representations identically and compare the
    # observable reductions
    totals = [f for f in Interpreter(codebase).function_names() if f.startswith("total_")]
    report = compare_aos_soa(codebase, soa, totals, count=48)
    print(f"equivalence: {report.equivalent}/{report.checked} reductions identical")

    # keep some quantities in AoS form (modularisation), as the paper allows
    partial = aos_soa.aos_to_soa_patch(
        aos_soa.derive_spec(codebase, struct_name="particle", keep_fields=("type",)))
    kept = partial.transform(codebase)
    print("with keep_fields=('type',):",
          "struct particle still declared" if "struct particle P[NPART];" in kept["globals.c"]
          else "unexpected")


if __name__ == "__main__":
    main()
