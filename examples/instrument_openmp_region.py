#!/usr/bin/env python3
"""Scenario: instrument every OpenMP region of an HPC code with LIKWID
markers (paper §3, first use case), then verify with the mini interpreter
that the markers enclose the regions and behaviour is unchanged.

Run with:  python examples/instrument_openmp_region.py
"""

from repro.cookbook import instrumentation
from repro.eval import Interpreter
from repro.workloads import openmp_kernels


def main() -> None:
    # a synthetic OpenMP code base standing in for a real application
    codebase = openmp_kernels.generate(n_files=2, kernels_per_file=3,
                                       regions_per_file=2, seed=2025)
    print(f"workload: {len(codebase)} files, {codebase.loc()} LoC, "
          f"{openmp_kernels.braced_region_count(codebase)} braced OpenMP regions")

    patch = instrumentation.likwid_patch()
    result = patch.apply(codebase)
    print(f"patch: {patch.loc()} lines of SmPL, {result.total_matches} matches, "
          f"+{result.lines_added()} lines")
    print()
    print(result["kernels_0.c"].diff()[:1200])

    # run an instrumented region under the interpreter: the marker calls are
    # recorded, the numeric result is identical to the un-instrumented run
    instrumented = patch.transform(codebase)
    fn = "relax_region_4" if "relax_region_4" in "".join(codebase.files.values()) else None
    names = [n for n in Interpreter(codebase).function_names()
             if n.startswith("relax_region_")]
    target = names[0]
    grid = [float(i % 7) for i in range(32)]
    grid2 = list(grid)

    plain = Interpreter(codebase)
    plain.call(target, 32, grid, 1.5)
    traced = Interpreter(instrumented)
    traced.call(target, 32, grid2, 1.5)

    assert grid == grid2, "instrumentation must not change numerics"
    print(f"\n{target}: results identical; marker calls recorded:",
          [c.name for c in traced.marker_calls])

    # the change is transitory: the removal patch restores the original
    restored = instrumentation.removal_patch().transform(instrumented)
    assert all("LIKWID" not in text for text in restored.files.values())
    print("removal patch restores an un-instrumented tree: OK")


if __name__ == "__main__":
    main()
