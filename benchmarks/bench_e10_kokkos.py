"""E10 — introduction of APIs enclosing lambdas (Kokkos)."""

from repro.cookbook import kokkos_lambda
from repro.workloads import kokkos_exercise
from conftest import emit


def test_e10_kokkos_lambda(benchmark, kokkos_workload):
    patch = kokkos_lambda.kokkos_patch()
    result = benchmark(lambda: patch.apply(kokkos_workload))

    candidates = kokkos_exercise.transformable_loop_count(kokkos_workload)
    text = "\n".join(f.text for f in result)
    pfor = text.count("Kokkos::parallel_for(")
    preduce = text.count("Kokkos::parallel_reduce(")

    # shape: every i/j-indexed loop becomes a Kokkos construct (the reduction
    # loop maps to parallel_reduce); the repeat loop stays a plain loop
    assert pfor + preduce == candidates > 0
    assert preduce == len(kokkos_workload.files)
    assert "KOKKOS_LAMBDA(const int" in text
    assert "for (int repeat = 0; repeat < nrepeat; repeat++)" in text
    assert text.count("#include <Kokkos_Core.hpp>") == len(kokkos_workload.files)

    emit("E10 Kokkos lambda introduction",
         "loop bodies become lambdas passed to parallel_for/parallel_reduce "
         "via the identifier-string loophole described in the paper",
         [{"candidate_loops": candidates, "parallel_for": pfor,
           "parallel_reduce": preduce, "headers_added": len(kokkos_workload.files)}])
