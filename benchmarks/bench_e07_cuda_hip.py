"""E7 — CUDA → HIP translation (dictionary-driven, AST level)."""

from repro.cookbook import cuda_hip
from repro.workloads import cuda_app
from conftest import emit


def test_e07_cuda_to_hip(benchmark, cuda_workload):
    patch = cuda_hip.cuda_to_hip_patch()
    result = benchmark(lambda: patch.apply(cuda_workload))
    text = "\n".join(f.text for f in result)

    launches = cuda_app.kernel_launch_count(cuda_workload)
    calls = cuda_app.cuda_call_count(cuda_workload)

    # shape: all launches and all dictionary calls translated; strings,
    # comments and non-CUDA identifiers untouched
    assert "<<<" not in text
    assert text.count("hipLaunchKernelGGL(") == launches
    assert "cudaMalloc(" not in text and "hipMalloc(" in text
    assert 'printf("cudaMemcpy or kernel launch failed' in text
    assert "cudaMalloc is discussed in this comment" in text
    assert "rocrand_state_xorwow" in text and "hipStream_t" in text

    emit("E7 CUDA→HIP translation",
         "token-to-token API translation enacted at the AST level "
         "(hipify-perl's dictionary, Coccinelle's matching)",
         [{"kernel_launches": launches, "api_call_sites": calls,
           "sites_matched": result.total_matches,
           "lines_changed": result.lines_added() + result.lines_removed()}])
