"""E3 — function multiversioning via target attributes (paper §3)."""

from repro.cookbook import multiversioning
from repro.workloads import openmp_kernels
from conftest import emit


def test_e03_multiversioning(benchmark, openmp_workload):
    patch = multiversioning.clone_with_target_attributes(function_regex="kernel")
    result = benchmark(lambda: patch.apply(openmp_workload))

    kernels = openmp_kernels.kernel_function_count(openmp_workload)
    text = "\n".join(f.text for f in result)

    assert text.count('__attribute__((target("avx2")))') == kernels
    assert text.count('__attribute__((target("avx512")))') == kernels
    assert text.count('__attribute__((target("default")))') == kernels

    # step 2 of the use case: the avx512 clones can now be located for
    # architecture-specific edits
    marked = multiversioning.match_architecture_specific().apply(
        {"out.c": text})
    assert marked.total_matches == kernels

    emit("E3 target-attribute multiversioning",
         "each kernel gains default/avx2/avx512 versions; clones are then "
         "addressable by attribute for arch-specific edits",
         [{"kernel_functions": kernels,
           "attributes_added": 3 * kernels,
           "avx512_clones_matched_in_step2": marked.total_matches}])
