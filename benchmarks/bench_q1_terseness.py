"""Q1 — terseness / genericity of semantic patches (claim C1)."""

from repro.analysis import terseness
from repro.cookbook import aos_soa, cuda_hip, instrumentation, mdspan, unrolling
from conftest import emit


def test_q1_terseness(benchmark, openmp_workload, gadget_workload, cuda_workload,
                      unrolled_workload):
    cases = [
        ("E1 instrumentation", instrumentation.likwid_patch(), openmp_workload),
        ("E5 unroll removal", unrolling.reroll_patch_p1_r1(), unrolled_workload),
        ("E6 mdspan", mdspan.multiindex_patch_from_codebase(gadget_workload), gadget_workload),
        ("E7 cuda→hip", cuda_hip.cuda_to_hip_patch(), cuda_workload),
        ("E0 aos→soa", aos_soa.aos_to_soa_patch_from_codebase(gadget_workload,
                                                              struct_name="particle"),
         gadget_workload),
    ]

    def run():
        return [terseness(name, patch, workload) for name, patch, workload in cases]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    # shape: every patch changes (many) more lines than it is long and applies
    # at several sites per rule line — "a single change specification applied
    # across a code base"
    for row in rows:
        assert row.sites_matched >= 1
        assert row.lines_changed >= row.patch_loc or row.sites_matched > 5
    assert any(row.leverage > 2 for row in rows)

    emit("Q1 terseness / genericity",
         "semantic patches are one to two orders of magnitude smaller than the "
         "change they enact",
         rows, columns=["experiment", "patch_loc", "workload_loc", "sites_matched",
                        "lines_changed", "leverage"])
