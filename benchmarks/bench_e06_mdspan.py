"""E6 — advanced expression modification: chained → multi-index subscripts."""

from repro.cookbook import mdspan
from repro.workloads import gadget
from conftest import emit


def test_e06_mdspan(benchmark, gadget_workload):
    patch = mdspan.multiindex_patch_from_codebase(gadget_workload, min_rank=3)
    result = benchmark(lambda: patch.apply(gadget_workload))

    before = gadget.chained_3d_subscript_count(gadget_workload)
    transformed = patch.transform(gadget_workload)
    after = gadget.chained_3d_subscript_count(transformed)
    text = "\n".join(f.text for f in result)

    # shape: every chained access to the declared 3-D grids is rewritten, the
    # (struct) particle accesses and the declarations themselves are untouched
    assert before > 0 and after == 0
    assert "P[i].pos" in text
    assert "double rho[NGRID][NGRID][NGRID];" in transformed["globals.c"]

    emit("E6 mdspan multi-index rewrite",
         "array names are derived from the global declarations; every chained "
         "access is rewritten, nothing else",
         [{"grid_arrays": len(mdspan.arrays_of_rank(gadget_workload, min_rank=3)),
           "chained_accesses_before": before, "chained_accesses_after": after,
           "sites_matched": result.total_matches}])
