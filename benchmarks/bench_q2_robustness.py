"""Q2 — AST/CFG matching vs text-oriented tools on adversarial inputs
(claim C2)."""

from repro.analysis import robustness_cuda, robustness_openacc, robustness_unroll
from conftest import emit


def test_q2_cuda_robustness(benchmark, cuda_workload):
    rows = benchmark.pedantic(lambda: robustness_cuda(cuda_workload),
                              rounds=1, iterations=1)
    semantic, textual = rows
    assert semantic.correct
    assert textual.missed > 0        # multi-line kernel launches missed
    assert textual.spurious > 0      # strings / comments rewritten
    emit("Q2a CUDA→HIP robustness", "AST-level translation vs hipify-style text replacement",
         rows, columns=["tool", "intended", "converted", "missed", "spurious", "broken",
                        "correct"])


def test_q2_openacc_robustness(benchmark, openacc_workload):
    rows = benchmark.pedantic(lambda: robustness_openacc(openacc_workload),
                              rounds=1, iterations=1)
    semantic, textual = rows
    assert semantic.correct
    assert textual.broken > 0        # continuation lines mishandled
    emit("Q2b OpenACC→OpenMP robustness",
         "directive translation vs line-oriented migration script",
         rows, columns=["tool", "intended", "converted", "missed", "broken", "correct"])


def test_q2_unroll_robustness(benchmark, unrolled_workload):
    rows = benchmark.pedantic(
        lambda: robustness_unroll(unrolled_workload, strategies=("checked",)),
        rounds=1, iterations=1)
    semantic, sed = rows
    assert semantic.correct and not sed.correct
    emit("Q2c unroll-removal robustness",
         "checked semantic rules vs sed-style rerolling on impostor loops",
         rows, columns=["tool", "intended", "converted", "spurious", "broken", "correct"])
