"""E5 — removal of explicit loop unrolling (paper §3; p0, p1+r1 and the
checked extension), including the behaviour-preservation check."""

import pytest

from repro.analysis import robustness_unroll
from repro.cookbook import unrolling
from repro.eval import Interpreter, compare_function
from repro.workloads import unrolled
from conftest import emit


def test_e05_reroll_p1r1(benchmark, unrolled_workload):
    patch = unrolling.reroll_patch_p1_r1()
    result = benchmark(lambda: patch.apply(unrolled_workload))
    transformed = {name: fr.text for name, fr in result.files.items()}
    text = "\n".join(transformed.values())

    intended = unrolled.unrolled_loop_count(unrolled_workload)
    assert text.count("#pragma omp unroll partial(4)") == intended > 0

    # behaviour preservation on a genuine unrolled kernel (multiple-of-4 trip)
    from repro import CodeBase
    name = [f for f in Interpreter(unrolled_workload).function_names()
            if f.startswith("unrolled_op_")][0]
    report = compare_function(
        unrolled_workload, CodeBase.from_files(transformed), name,
        lambda: ([0.0] * 16, [float(i) for i in range(16)], 1.5, 0.25, 16),
        observed_args=(0,))
    assert report.all_equivalent

    emit("E5 unroll removal (p1+r1)",
         "manually unrolled loops collapse to one statement + '#pragma omp "
         "unroll partial'; behaviour preserved under the mini interpreter",
         [{"unrolled_loops": intended,
           "rerolled": text.count("#pragma omp unroll partial(4)"),
           "equivalence_checks": report.checked, "equivalent": report.equivalent}])


def test_e05_strategy_ablation(benchmark, unrolled_workload):
    rows = benchmark.pedantic(lambda: robustness_unroll(unrolled_workload),
                              rounds=1, iterations=1)
    by_tool = {r.tool: r for r in rows}
    # shape: only the checked strategy is fully correct; p0 and sed mangle
    # impostors; p1r1 leaves them index-rewritten (the caveat the paper notes)
    assert by_tool["semantic-patch (checked)"].correct
    assert by_tool["semantic-patch (p0)"].spurious > 0
    assert by_tool["semantic-patch (p1r1)"].broken > 0
    assert not by_tool["sed-reroll"].correct
    emit("E5 unroll-removal strategy ablation",
         "p0 < p1+r1 < checked (paper's suggested follow-up); text-based "
         "rerolling silently destroys impostor loops",
         rows, columns=["tool", "intended", "converted", "spurious", "broken", "correct"])
