"""Shared fixtures and reporting helpers for the experiment benchmarks.

Each ``bench_*`` file regenerates one experiment of EXPERIMENTS.md: it builds
the synthetic workload standing in for the code base the paper refers to,
applies the corresponding cookbook semantic patch under ``pytest-benchmark``
timing, asserts the qualitative *shape* the paper claims (who wins / what is
transformed / what is preserved), and prints the measured rows so they can be
copied into EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

_SRC = pathlib.Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis import format_table, render_experiment, terseness  # noqa: E402


#: moderate workload sizes so the full harness runs in seconds, not minutes
SIZES = {"files": 3, "loops": 6}


@pytest.fixture(autouse=True)
def _cold_parse_cache():
    """Start every experiment with a cold process-wide parse-tree cache so
    one benchmark's parses never subsidise another's timings.  (Warm rounds
    *within* one pytest-benchmark measurement are steady-state behaviour and
    intentionally kept.)"""
    from repro.engine.cache import DEFAULT_TREE_CACHE

    DEFAULT_TREE_CACHE.clear()
    yield


def emit(title: str, claim: str, rows, columns=None) -> None:
    """Print one experiment block (captured by ``--benchmark-only -s``)."""
    print()
    print(render_experiment(title, claim, rows, columns=columns))


@pytest.fixture(scope="session")
def openmp_workload():
    from repro.workloads import openmp_kernels

    return openmp_kernels.generate(n_files=SIZES["files"], kernels_per_file=4,
                                   regions_per_file=3, seed=42)


@pytest.fixture(scope="session")
def gadget_workload():
    from repro.workloads import gadget

    return gadget.generate(n_files=SIZES["files"], loops_per_file=SIZES["loops"],
                           grid_kernels_per_file=2, seed=42)


@pytest.fixture(scope="session")
def multiversion_workload():
    from repro.workloads import multiversion_app

    return multiversion_app.generate(n_files=SIZES["files"], clone_sets_per_file=4, seed=42)


@pytest.fixture(scope="session")
def unrolled_workload():
    from repro.workloads import unrolled

    return unrolled.generate(n_files=SIZES["files"], unrolled_per_file=5,
                             impostors_per_file=2, plain_per_file=2, seed=42)


@pytest.fixture(scope="session")
def cuda_workload():
    from repro.workloads import cuda_app

    return cuda_app.generate(n_files=SIZES["files"], drivers_per_file=3,
                             adversarial=True, seed=42)


@pytest.fixture(scope="session")
def openacc_workload():
    from repro.workloads import openacc_app

    return openacc_app.generate(n_files=SIZES["files"], loops_per_file=5,
                                adversarial=True, seed=42)


@pytest.fixture(scope="session")
def rawloops_workload():
    from repro.workloads import rawloops

    return rawloops.generate(n_files=SIZES["files"], searches_per_file=5,
                             counters_per_file=2, seed=42)


@pytest.fixture(scope="session")
def kokkos_workload():
    from repro.workloads import kokkos_exercise

    return kokkos_exercise.generate(n_files=2)


@pytest.fixture(scope="session")
def librsb_workload():
    from repro.workloads import librsb_like

    return librsb_like.generate(n_files=2)


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Fold the engine's per-phase timing histograms (parse, prefilter,
    match, transform, memo, splice, sync — count/sum/mean and interpolated
    p50/p90/p99 each) into any saved ``--benchmark-json`` file, so a BENCH
    artifact records not just how long each experiment took but where the
    engine spent the time.  Empty when telemetry is off (``REPRO_OBS=0``)."""
    from repro.obs import registry as _obs

    output_json["repro_phases"] = _obs.phase_summaries()
