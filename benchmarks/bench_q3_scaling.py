"""Q3 — engine runtime vs workload size (code-base-wide application).

Besides the original runtime-vs-size sweeps, this file measures the
driver-level optimisations: the required-token prefilter (files that cannot
match are answered without parsing), parallel application (``jobs=N``) and
whole-cookbook batch application (``PatchSet`` pipelines), compared against
the seed serial path (``Engine.apply_to_files``: no prefilter, no
parallelism).

Setting ``REPRO_BENCH_QUICK=1`` runs a smoke-mode sweep: smaller patch sets
and no hard speedup thresholds, so CI can check the harness itself without
depending on the runner's timing behaviour.
"""

import gc
import os
import time
from dataclasses import dataclass

from repro import CodeBase, PatchSet, SemanticPatch
from repro.analysis import scaling_sweep
from repro.cookbook import (bloat_removal, cuda_hip, instrumentation, mdspan,
                            openacc_openmp, stl_modernize, unrolling)
from repro.engine import Engine
from repro.engine.cache import DEFAULT_TREE_CACHE
from repro.workloads import (cuda_app, gadget, openacc_app, openmp_kernels,
                             rawloops)
from conftest import emit

#: smoke mode for CI: exercise every measurement, assert only correctness
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def speedup_floor(normal: float) -> float:
    """Hard speedup thresholds only apply outside smoke mode."""
    return 0.0 if QUICK else normal


def test_q3_scaling_instrumentation(benchmark):
    def sweep():
        return scaling_sweep(
            instrumentation.likwid_patch,
            lambda size: openmp_kernels.generate(n_files=size, kernels_per_file=4,
                                                 regions_per_file=3, seed=1),
            sizes=[1, 2, 4, 8])

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # shape: matches grow with the workload and the runtime stays roughly
    # proportional to its size (no super-linear blow-up)
    assert rows[-1].matches > rows[0].matches
    assert rows[-1].workload_loc > 4 * rows[0].workload_loc
    per_loc = [r.seconds / r.workload_loc for r in rows]
    assert per_loc[-1] < per_loc[0] * 8
    emit("Q3a scaling (instrumentation over OpenMP kernels)",
         "runtime grows roughly linearly with the number of files/regions",
         rows, columns=["size_label", "files", "workload_loc", "matches", "seconds",
                        "loc_per_second"])


def test_q3_scaling_mdspan(benchmark):
    def sweep():
        return scaling_sweep(
            lambda: mdspan.multiindex_patch_for_arrays({"rho": 3, "phi": 3}),
            lambda size: gadget.generate(n_files=size, loops_per_file=3,
                                         grid_kernels_per_file=3, seed=1),
            sizes=[1, 2, 4])

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert rows[-1].matches > rows[0].matches
    emit("Q3b scaling (expression rewriting over GADGET-like grids)",
         "expression-level rules also scale with the code base",
         rows, columns=["size_label", "files", "workload_loc", "matches", "seconds",
                        "loc_per_second"])


# ---------------------------------------------------------------------------
# Q3c/Q3d — driver: prefilter skip-rate and parallel speedup
# ---------------------------------------------------------------------------

def mixed_workload(scale: int = 1) -> CodeBase:
    """A mixed HPC tree: a handful of CUDA drivers buried in a majority of
    unrelated OpenMP/GADGET/raw-loop/OpenACC sources (44 files at scale 1)."""
    files: dict[str, str] = {}
    parts = [
        ("cuda", cuda_app.generate(n_files=6 * scale, seed=1)),
        ("omp", openmp_kernels.generate(n_files=12 * scale, kernels_per_file=4,
                                        regions_per_file=3, seed=2)),
        ("gadget", gadget.generate(n_files=10 * scale, loops_per_file=4,
                                   grid_kernels_per_file=2, seed=3)),
        ("raw", rawloops.generate(n_files=8 * scale, seed=4)),
        ("acc", openacc_app.generate(n_files=6 * scale, seed=5)),
    ]
    for prefix, codebase in parts:
        for name, text in codebase.items():
            files[f"{prefix}/{name}"] = text
    return CodeBase.from_files(files)


@dataclass
class DriverRow:
    path: str
    files: int
    skipped: int
    matches: int
    seconds: float
    speedup_vs_seed: float


def _texts(result) -> dict[str, str]:
    return {name: fr.text for name, fr in result.files.items()}


def _seed_serial(patch, codebase):
    """The seed code path: serial engine, no prefilter, no shared cache."""
    engine = Engine(patch.ast, options=patch.options)
    started = time.perf_counter()
    result = engine.apply_to_files(codebase.files)
    return result, time.perf_counter() - started


def _driver_run(patch, codebase, *, jobs, prefilter):
    DEFAULT_TREE_CACHE.clear()  # no warm-cache advantage over the seed path
    started = time.perf_counter()
    result = patch.apply(codebase, jobs=jobs, prefilter=prefilter)
    return result, time.perf_counter() - started


def test_q3_prefilter_parallel_speedup(benchmark):
    """Acceptance: >= 2x wall clock vs the seed serial path when applying a
    single-target cookbook patch (the CUDA->HIP kernel-launch rewrite) to a
    40+ file mixed workload with jobs=4 + prefilter, identical outputs."""
    codebase = mixed_workload(scale=1)
    assert len(codebase) >= 40
    patch = cuda_hip.kernel_launch_patch()

    def compare():
        seed_result, seed_seconds = _seed_serial(patch, codebase)
        fast_result, fast_seconds = _driver_run(patch, codebase,
                                                jobs=4, prefilter=True)
        return seed_result, seed_seconds, fast_result, fast_seconds

    seed_result, seed_seconds, fast_result, fast_seconds = \
        benchmark.pedantic(compare, rounds=1, iterations=1)

    assert _texts(fast_result) == _texts(seed_result)  # byte-identical
    assert fast_result.total_matches == seed_result.total_matches > 0
    speedup = seed_seconds / fast_seconds
    assert speedup >= speedup_floor(2.0), \
        f"expected >= 2x, measured {speedup:.2f}x"
    stats = fast_result.stats
    assert stats.files_skipped >= len(codebase) // 2  # prefilter pulls weight

    rows = [
        DriverRow("seed serial", len(codebase), 0,
                  seed_result.total_matches, seed_seconds, 1.0),
        DriverRow("jobs=4 + prefilter", len(codebase), stats.files_skipped,
                  fast_result.total_matches, fast_seconds, speedup),
    ]
    emit("Q3c driver speedup (CUDA kernel-launch patch over a mixed tree)",
         "prefilter + parallel jobs beat the seed serial engine >= 2x "
         "with byte-identical output",
         rows, columns=["path", "files", "skipped", "matches", "seconds",
                        "speedup_vs_seed"])


def test_q3_prefilter_skip_rate(benchmark):
    """Skip-rate of the prefilter across representative cookbook patches on
    the same mixed tree (how much of the code base is never parsed)."""
    codebase = mixed_workload(scale=1)
    patches = {
        "cuda kernel-launch": cuda_hip.kernel_launch_patch(),
        "likwid instrumentation": instrumentation.likwid_patch(),
        "cuda_to_hip (full)": cuda_hip.cuda_to_hip_patch(),
    }

    def measure():
        rows = []
        for label, patch in patches.items():
            seed_result, seed_seconds = _seed_serial(patch, codebase)
            fast_result, fast_seconds = _driver_run(patch, codebase,
                                                    jobs=1, prefilter=True)
            assert _texts(fast_result) == _texts(seed_result)
            rows.append(DriverRow(label, len(codebase),
                                  fast_result.stats.files_skipped,
                                  fast_result.total_matches, fast_seconds,
                                  seed_seconds / fast_seconds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    by_label = {row.path: row for row in rows}
    # single-target patches skip most of the tree; the full CUDA->HIP chain
    # contains an unfilterable match-any-call rule, so it cannot skip files
    assert by_label["cuda kernel-launch"].skipped >= len(codebase) // 2
    assert by_label["likwid instrumentation"].skipped > 0
    assert by_label["cuda_to_hip (full)"].skipped == 0
    emit("Q3d prefilter skip-rate (mixed tree, 44 files)",
         "files answered without parsing, per patch; outputs stay identical",
         rows, columns=["path", "files", "skipped", "matches", "seconds",
                        "speedup_vs_seed"])


# ---------------------------------------------------------------------------
# Q3e — PatchSet pipeline vs N sequential applies
# ---------------------------------------------------------------------------

def modernization_patches() -> list:
    """The selective 'single-target' half of the cookbook: each patch only
    concerns one corner of the mixed tree, which is exactly the regime batch
    application was built for (the prefilter union gates most file x patch
    pairs, and surviving files share one parse across patch boundaries)."""
    patches = [
        cuda_hip.kernel_launch_patch(),
        instrumentation.likwid_patch(),
        openacc_openmp.acc_to_omp_patch(),
        stl_modernize.raw_loop_to_find_patch(),
        bloat_removal.remove_obsolete_clones(),
        unrolling.reroll_patch_p0(),
    ]
    return patches[:3] if QUICK else patches


@dataclass
class PipelineRow:
    path: str
    passes: int
    sessions: int
    matches: int
    seconds: float
    speedup_vs_path: float


def test_q3_pipeline_vs_sequential_applies(benchmark):
    """Acceptance: PatchSet batch application of the modernization patches is
    >= 1.5x faster than chaining one full pass per patch (the pre-pipeline
    workflow: each ``apply`` token-scans the tree and parses from cold, as N
    independent spatch invocations would), with byte-identical output.
    Against N *prefiltered* in-process applies the bound is parity: matching
    work dominates there and is identical by construction, so the pipeline
    can only save the repeated scans/parses (measured ~1.1x)."""
    codebase = mixed_workload(scale=1)
    patches = modernization_patches()

    def seed_sequential():
        """One full seed pass per patch (serial engine, no prefilter)."""
        current = dict(codebase.files)
        for patch in patches:
            DEFAULT_TREE_CACHE.clear()
            result = Engine(patch.ast, options=patch.options) \
                .apply_to_files(current)
            current = {name: fr.text for name, fr in result.files.items()}
        return current

    def prefiltered_sequential():
        """N independent prefiltered applies chained through transform()."""
        current = codebase
        total_matches = 0
        for patch in patches:
            DEFAULT_TREE_CACHE.clear()
            result = patch.apply(current, jobs=1, prefilter=True)
            total_matches += result.total_matches
            current = CodeBase(files={name: fr.text
                                      for name, fr in result.files.items()})
        return current, total_matches

    def pipeline():
        DEFAULT_TREE_CACHE.clear()
        return PatchSet(patches).apply(codebase, jobs=1, prefilter=True)

    def compare():
        pipeline()  # warm-up: imports and compiled regexes out of the timings
        started = time.perf_counter()
        seed_final = seed_sequential()
        seed_seconds = time.perf_counter() - started
        started = time.perf_counter()
        seq_final, seq_matches = prefiltered_sequential()
        seq_seconds = time.perf_counter() - started
        started = time.perf_counter()
        pipe_result = pipeline()
        pipe_seconds = time.perf_counter() - started
        return (seed_final, seed_seconds, seq_final, seq_matches, seq_seconds,
                pipe_result, pipe_seconds)

    (seed_final, seed_seconds, seq_final, seq_matches, seq_seconds,
     pipe_result, pipe_seconds) = benchmark.pedantic(compare, rounds=1,
                                                     iterations=1)

    # byte-identical to both sequential compositions, same total match count
    assert _texts(pipe_result) == seq_final.files == seed_final
    assert pipe_result.total_matches == seq_matches > 0

    seed_speedup = seed_seconds / pipe_seconds
    seq_speedup = seq_seconds / pipe_seconds
    assert seed_speedup >= speedup_floor(1.5), \
        f"expected >= 1.5x vs seed passes, measured {seed_speedup:.2f}x"
    assert seq_speedup >= speedup_floor(0.9), \
        f"pipeline must not lose to sequential applies ({seq_speedup:.2f}x)"

    stats = pipe_result.stats
    # the union prefilter does real gating: most file x patch sessions skipped
    if not QUICK:
        assert stats.sessions_gated > stats.sessions_run

    n = len(patches)
    rows = [
        PipelineRow(f"{n} seed full passes", n, n * len(codebase),
                    pipe_result.total_matches, seed_seconds, seed_speedup),
        PipelineRow(f"{n} prefiltered applies", n, stats.sessions_run,
                    seq_matches, seq_seconds, seq_speedup),
        PipelineRow("PatchSet pipeline", 1, stats.sessions_run,
                    pipe_result.total_matches, pipe_seconds, 1.0),
    ]
    emit("Q3e batch application (modernization patches over the mixed tree)",
         "one pipeline pass beats one-full-pass-per-patch >= 1.5x and stays "
         "at parity with prefiltered sequential applies (whose matching "
         "work it shares by construction), byte-identical output",
         rows, columns=["path", "passes", "sessions", "matches", "seconds",
                        "speedup_vs_path"])


# ---------------------------------------------------------------------------
# Q3f — incremental re-application after a 1-file edit
# ---------------------------------------------------------------------------

@dataclass
class IncrementalRow:
    path: str
    files: int
    rerun: int
    reused: int
    matches: int
    seconds: float
    speedup_vs_cold: float


def test_q3f_incremental_one_file_edit(benchmark):
    """Acceptance: after editing 1 of 44 files, re-applying the
    modernization patch set with ``since=prior_result`` beats a cold
    pipeline pass >= 5x, with byte-identical texts and reports."""
    codebase = mixed_workload(scale=1)
    patches = modernization_patches()
    patchset = PatchSet(patches)

    edited_name = next(name for name in sorted(codebase) if
                       name.startswith("omp/"))
    edited_files = dict(codebase.files)
    edited_files[edited_name] += ("\nvoid q3f_probe(int n) {\n"
                                  "#pragma omp parallel\n"
                                  "{\nint probe = n;\n}\n"
                                  "}\n")

    def compare():
        DEFAULT_TREE_CACHE.clear()
        prior = patchset.apply(codebase, jobs=1, prefilter=True)
        # cold re-run over the edited tree (its own CodeBase: no shared
        # token-index warm-up between the contenders)
        DEFAULT_TREE_CACHE.clear()
        started = time.perf_counter()
        cold = patchset.apply(CodeBase.from_files(edited_files),
                              jobs=1, prefilter=True)
        cold_seconds = time.perf_counter() - started
        DEFAULT_TREE_CACHE.clear()
        started = time.perf_counter()
        incremental = patchset.apply(CodeBase.from_files(edited_files),
                                     jobs=1, prefilter=True, since=prior)
        incremental_seconds = time.perf_counter() - started
        return cold, cold_seconds, incremental, incremental_seconds

    cold, cold_seconds, incremental, incremental_seconds = \
        benchmark.pedantic(compare, rounds=1, iterations=1)

    # byte-identical to the cold pass, and the delta was really 1 file
    assert _texts(incremental) == _texts(cold)
    assert incremental.total_matches == cold.total_matches > 0
    stats = incremental.incremental
    assert stats.fallback is None
    assert stats.files_rerun == 1
    assert stats.files_reused == len(codebase) - 1

    speedup = cold_seconds / incremental_seconds
    assert speedup >= speedup_floor(5.0), \
        f"expected >= 5x, measured {speedup:.2f}x"

    rows = [
        IncrementalRow("cold pipeline pass", len(codebase), len(codebase), 0,
                       cold.total_matches, cold_seconds, 1.0),
        IncrementalRow("incremental (1 file edited)", len(codebase),
                       stats.files_rerun, stats.files_reused,
                       incremental.total_matches, incremental_seconds,
                       speedup),
    ]
    emit("Q3f incremental re-application (1 edited file in the mixed tree)",
         "re-running only the content-changed file and splicing the other "
         "43 cached results beats a cold pipeline pass >= 5x, "
         "byte-identical output",
         rows, columns=["path", "files", "rerun", "reused", "matches",
                        "seconds", "speedup_vs_cold"])


# ---------------------------------------------------------------------------
# Q3g — patch-set delta: append 1 patch to the warm 12-patch cookbook
# ---------------------------------------------------------------------------

#: the appended 13th patch: rewrites a call the OpenMP regions of the mixed
#: tree really contain, so the suffix replay does genuine matching work
Q3G_APPENDED_SMPL = ("@q3g_probe@ @@\n"
                     "- omp_get_thread_num()\n"
                     "+ repro_thread_id()\n")


@dataclass
class PatchDeltaRow:
    path: str
    patches: int
    patches_spliced: int
    files_reused: int
    matches: int
    seconds: float
    speedup_vs_cold: float


def test_q3g_append_patch_to_warm_cookbook(benchmark):
    """Acceptance: appending 1 patch to the 12-patch full_modernization
    cookbook with warm state splices every file's cached prefix results and
    re-runs only the new patch — >= 3x faster than a cold 13-patch pass,
    byte-identical texts, reports and records (the cookbook-authoring loop
    the paper's workflow implies: iterate on the patch list against a fixed
    tree)."""
    from repro.cookbook import full_modernization_pipeline

    codebase = mixed_workload(scale=1)
    base = full_modernization_pipeline(mdspan_arrays={"rho": 3, "phi": 3})
    base_patches = list(base) if not QUICK else list(base)[:4]
    appended = SemanticPatch.from_string(Q3G_APPENDED_SMPL, name="q3g-probe")
    warm_set = PatchSet(base_patches)
    extended = PatchSet(base_patches + [appended])

    def compare():
        # the warm state: the cookbook was applied before the append
        DEFAULT_TREE_CACHE.clear()
        prior = warm_set.apply(codebase, jobs=1, prefilter=True)
        # cold 13-patch pass over its own CodeBase (fresh token index)
        DEFAULT_TREE_CACHE.clear()
        started = time.perf_counter()
        cold = extended.apply(CodeBase.from_files(dict(codebase.files)),
                              jobs=1, prefilter=True)
        cold_seconds = time.perf_counter() - started
        # warm append: splice the 12-patch prefix, run only the new patch
        DEFAULT_TREE_CACHE.clear()
        started = time.perf_counter()
        warm = extended.apply(CodeBase.from_files(dict(codebase.files)),
                              jobs=1, prefilter=True, since=prior)
        warm_seconds = time.perf_counter() - started
        return cold, cold_seconds, warm, warm_seconds

    cold, cold_seconds, warm, warm_seconds = \
        benchmark.pedantic(compare, rounds=1, iterations=1)

    # byte-identical, and the reuse really was patch-prefix-shaped
    assert _texts(warm) == _texts(cold)
    assert warm.total_matches == cold.total_matches > 0
    assert warm.records == cold.records
    stats = warm.incremental
    assert stats.fallback is None
    assert stats.patches_reused == len(base_patches)
    assert stats.patches_total == len(base_patches) + 1
    assert stats.files_reused == len(codebase)
    assert stats.files_rerun == 0
    # the appended patch did real work (it matches the OpenMP regions)
    assert cold.per_patch[-1].total_matches > 0

    speedup = cold_seconds / warm_seconds
    assert speedup >= speedup_floor(3.0), \
        f"expected >= 3x, measured {speedup:.2f}x"

    n = len(base_patches) + 1
    rows = [
        PatchDeltaRow(f"cold {n}-patch pass", n, 0, 0,
                      cold.total_matches, cold_seconds, 1.0),
        PatchDeltaRow("append-1 warm re-apply", n, stats.patches_reused,
                      stats.files_reused, warm.total_matches, warm_seconds,
                      speedup),
    ]
    emit("Q3g patch-set delta (append 1 patch to the warm cookbook)",
         "splicing the unchanged 12-patch prefix and re-running only the "
         "appended patch beats a cold 13-patch pass >= 3x, byte-identical "
         "output",
         rows, columns=["path", "patches", "patches_spliced", "files_reused",
                        "matches", "seconds", "speedup_vs_cold"])


# ---------------------------------------------------------------------------
# Q3h — warm server request vs a cold CLI process
# ---------------------------------------------------------------------------

@dataclass
class ServerRow:
    path: str
    files: int
    rerun: int
    matches: int
    seconds: float
    speedup_vs_cold: float


@dataclass
class ThroughputRow:
    clients: int
    requests: int
    seconds: float
    requests_per_second: float


def _edit_probe(text: str) -> str:
    return text + ("\nvoid q3h_probe(int n) {\n#pragma omp parallel\n"
                   "{\nint probe = n;\n}\n}\n")


def test_q3h_server_vs_cold_cli(benchmark, tmp_path):
    """Acceptance: the steady-state server workflow — 1-file edit, delta
    sync, warm apply of the 12-patch cookbook over the 44-file mixed tree —
    is >= 5x faster end-to-end (client-observed) than spawning a cold
    ``repro-spatch`` process for the same work, with byte-identical diffs
    and exit codes; server results are also byte-identical across
    prefilter on/off.  Plus a multi-client throughput curve against the
    warm workspace."""
    import json
    import pathlib
    import subprocess
    import sys
    import threading

    import repro
    from repro.cookbook import full_modernization_pipeline
    from repro.server.client import RemoteClient
    from repro.server.daemon import PatchDaemon
    from repro.server.service import PatchService

    codebase = mixed_workload(scale=1)
    patches = list(full_modernization_pipeline(mdspan_arrays={"rho": 3,
                                                              "phi": 3}))
    if QUICK:
        patches = patches[:4]
    tree = tmp_path / "tree"
    codebase.write_to(tree)
    patch_args: list[str] = []
    for index, patch in enumerate(patches):
        assert patch.ast.source_text, "cookbook patches carry SMPL source"
        sp_file = tmp_path / f"p{index:02d}.cocci"
        sp_file.write_text(patch.ast.source_text)
        patch_args += ["--sp-file", str(sp_file)]
    cli_env = dict(os.environ)
    cli_env["PYTHONPATH"] = os.pathsep.join(
        [str(pathlib.Path(repro.__file__).parent.parent),
         cli_env.get("PYTHONPATH", "")]).rstrip(os.pathsep)

    def cold_cli() -> "tuple[str, int, float]":
        """One full cold process: interpreter + imports + SMPL parse +
        whole-tree application — what every request costs without a
        daemon.  Runs with cwd=tree and target '.' so file names match the
        server workspace's relative names exactly."""
        started = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli.spatch", *patch_args, "."],
            cwd=tree, env=cli_env, capture_output=True, text=True)
        seconds = time.perf_counter() - started
        assert proc.returncode in (0, 1), proc.stderr
        return proc.stdout, proc.returncode, seconds

    daemon = PatchDaemon(f"unix:{tmp_path}/bench.sock", PatchService())
    daemon.serve_in_thread()
    try:
        def measure():
            with RemoteClient(daemon.address) as client:
                client.open_workspace("bench")
                client.sync_codebase("bench", CodeBase.from_dir(tree))
                client.apply("bench", patches)  # warm the workspace

                # the steady-state request: edit 1 file, delta-sync, apply
                edited = sorted(name for name in codebase
                                if name.startswith("omp/"))[0]
                (tree / edited).write_text(
                    _edit_probe((tree / edited).read_text()))
                current = CodeBase.from_dir(tree)
                started = time.perf_counter()
                delta = client.sync_codebase("bench", current)
                payload = client.apply("bench", patches, profile=True)
                warm_seconds = time.perf_counter() - started

                cli_out, cli_status, cold_seconds = cold_cli()

                throughput = []
                for n_clients in (1, 2, 4):
                    barrier = threading.Barrier(n_clients)
                    done = []

                    def worker():
                        with RemoteClient(daemon.address) as mine:
                            barrier.wait()
                            for _ in range(3):
                                done.append(mine.query("bench", patches))

                    workers = [threading.Thread(target=worker)
                               for _ in range(n_clients)]
                    started = time.perf_counter()
                    for thread in workers:
                        thread.start()
                    for thread in workers:
                        thread.join()
                    seconds = time.perf_counter() - started
                    assert len(done) == 3 * n_clients
                    throughput.append(ThroughputRow(
                        n_clients, len(done), seconds,
                        len(done) / seconds if seconds else 0.0))

                # prefilter off on the same workspace: identical bytes
                # (runs last — it stores a prefilter=False result, which
                # would cool the warm state the throughput loop measures)
                off = client.apply("bench", patches, prefilter=False)
            return (delta, payload, warm_seconds, cli_out, cli_status,
                    cold_seconds, off, throughput)

        (delta, payload, warm_seconds, cli_out, cli_status, cold_seconds,
         off, throughput) = benchmark.pedantic(measure, rounds=1,
                                               iterations=1)
    finally:
        daemon.shutdown()

    # the delta really was one file, spliced against warm state
    assert delta["uploaded"] == 1
    incremental = payload["profile"]["incremental"]
    assert incremental["fallback"] is None
    assert incremental["files_rerun"] == 1
    assert incremental["files_reused"] == len(codebase) - 1

    # byte-identical to the cold CLI process: same diffs, same exit code
    server_diff = "".join(entry.get("diff", "")
                          for entry in payload["files"].values())
    assert server_diff == cli_out
    assert payload["exit_status"] == cli_status == 0

    # prefilter on/off: identical texts, reports, exit codes
    deterministic = {key: value for key, value in payload.items()
                     if key not in ("profile", "workspace")}
    off_deterministic = {key: value for key, value in off.items()
                         if key not in ("profile", "workspace")}
    assert json.dumps(deterministic, sort_keys=True) \
        == json.dumps(off_deterministic, sort_keys=True)

    speedup = cold_seconds / warm_seconds
    assert speedup >= speedup_floor(5.0), \
        f"expected >= 5x, measured {speedup:.2f}x"

    rows = [
        ServerRow("cold repro-spatch process", len(codebase), len(codebase),
                  payload["summary"]["matches"], cold_seconds, 1.0),
        ServerRow("warm server request (sync+apply)", len(codebase), 1,
                  payload["summary"]["matches"], warm_seconds, speedup),
    ]
    emit("Q3h server mode (1-file edit against the warm 12-patch cookbook)",
         "a steady-state daemon request — content-hash delta sync plus a "
         "spliced incremental apply — beats spawning a cold CLI process "
         ">= 5x end-to-end, byte-identical diffs and exit codes",
         rows, columns=["path", "files", "rerun", "matches", "seconds",
                        "speedup_vs_cold"])
    emit("Q3h multi-client throughput (warm workspace, match-only queries)",
         "request throughput as concurrent clients stack onto one warm "
         "workspace (per-workspace locking serializes applies; the curve "
         "shows the saturation point)",
         throughput, columns=["clients", "requests", "seconds",
                              "requests_per_second"])


# ---------------------------------------------------------------------------
# Q3i — compiled matcher backend vs the interpreted reference
# ---------------------------------------------------------------------------

@dataclass
class MatcherRow:
    backend: str
    rules: int
    files: int
    pairs: int
    matches: int
    seconds: float
    speedup_vs_interp: float


def test_q3i_compiled_matcher_vs_interpreter(benchmark):
    """Acceptance: a cold matching pass of the whole cookbook's rules over
    the 44-file mixed tree — every (rule, file) pair, compilation and the
    candidate-index walks included in the compiled timing — is >= 5x
    faster with the compiled backend, with identical match signatures pair
    by pair and byte-identical end-to-end pipeline output.

    The grid isolates the matcher: both backends consume the same parsed
    trees, so parse time (which re-parse-after-edit makes the bulk of a
    full pipeline pass and which is byte-for-byte the same work in both
    backends) cannot dilute the comparison.
    """
    from repro.cookbook import full_modernization_pipeline
    from repro.engine.compile import CompiledRule
    from repro.engine.matcher import Matcher
    from repro.lang.parser import parse_source

    codebase = mixed_workload(scale=1)
    patches = list(full_modernization_pipeline())
    if QUICK:
        patches = patches[:4]
    rules = [(patch, rule) for patch in patches
             for rule in patch.ast.patch_rules()]
    trees = {name: parse_source(text, name=name, options=patches[0].options,
                                tolerant=True)
             for name, text in codebase.files.items()}
    rounds = 1 if QUICK else 5

    def interp_pass():
        gc.collect()
        started = time.perf_counter()
        signatures = []
        for patch, rule in rules:
            matcher_options = patch.options
            for name, tree in trees.items():
                found = Matcher(rule, tree,
                                options=matcher_options).match_all()
                signatures.append((rule.name, name,
                                   [inst.signature() for inst in found]))
        return signatures, time.perf_counter() - started

    def compiled_pass():
        # cold: recompile every rule and rebuild every candidate index
        for tree in trees.values():
            if hasattr(tree, "_node_index"):
                del tree._node_index
        gc.collect()
        started = time.perf_counter()
        signatures = []
        for patch, rule in rules:
            crule = CompiledRule(rule, patch.options)
            for name, tree in trees.items():
                found = crule.match_all(tree)
                signatures.append((rule.name, name,
                                   [inst.signature() for inst in found]))
        return signatures, time.perf_counter() - started

    def compare():
        interp_pass()          # warm-up: imports and caches out of timings
        compiled_pass()
        interp_runs = [interp_pass() for _ in range(rounds)]
        compiled_runs = [compiled_pass() for _ in range(rounds)]
        return interp_runs, compiled_runs

    interp_runs, compiled_runs = benchmark.pedantic(compare, rounds=1,
                                                    iterations=1)

    # signature-identical, pair by pair, on every run of both backends
    reference = interp_runs[0][0]
    for signatures, _seconds in interp_runs + compiled_runs:
        assert signatures == reference
    matches = sum(len(sigs) for _rule, _file, sigs in reference)

    # byte-identical end-to-end output (the full pipeline, both backends)
    interp_result = PatchSet(patches).apply(mixed_workload(scale=1),
                                            compile=False)
    compiled_result = PatchSet(patches).apply(mixed_workload(scale=1),
                                              compile=True)
    assert _texts(compiled_result) == _texts(interp_result)

    # min-of-rounds: the noise-robust per-backend estimate (a slow outlier
    # round says something about the machine, not the backend)
    interp_seconds = min(seconds for _s, seconds in interp_runs)
    compiled_seconds = min(seconds for _s, seconds in compiled_runs)
    speedup = interp_seconds / compiled_seconds
    assert speedup >= speedup_floor(5.0), \
        f"expected >= 5x, measured {speedup:.2f}x"

    rows = [
        MatcherRow("interpreted reference", len(rules), len(trees),
                   len(rules) * len(trees), matches, interp_seconds, 1.0),
        MatcherRow("compiled (cold: compile + index + match)", len(rules),
                   len(trees), len(rules) * len(trees), matches,
                   compiled_seconds, speedup),
    ]
    emit("Q3i compiled matcher backend (cookbook rules x mixed tree)",
         "per-rule specialized matchers over shared candidate indexes beat "
         "the interpreted reference >= 5x on a cold matching pass, with "
         "identical match signatures and byte-identical pipeline output",
         rows, columns=["backend", "rules", "files", "pairs", "matches",
                        "seconds", "speedup_vs_interp"])


# ---------------------------------------------------------------------------
# Q3j — transform memo: duplicated vendored trees and fresh-process warm-start
# ---------------------------------------------------------------------------

#: vendored copies of the mixed tree (the monorepo pattern the memo targets:
#: byte-identical sources under several prefixes)
Q3J_VENDOR_COPIES = 3


@dataclass
class MemoRow:
    path: str
    files: int
    memo_hits: int
    matches: int
    seconds: float
    speedup_vs_cold: float


def vendored_workload(copies: int = Q3J_VENDOR_COPIES) -> CodeBase:
    """The mixed tree vendored ``copies`` times — identical contents under
    ``vendor{k}/`` prefixes, as a monorepo carrying the same third-party
    sources in several places does."""
    base = mixed_workload(scale=1)
    files = {f"vendor{index}/{name}": text
             for index in range(copies)
             for name, text in base.files.items()}
    return CodeBase.from_files(files)


def test_q3j_transform_memo(benchmark, tmp_path):
    """Acceptance: with a warm transform memo, re-applying the modernization
    patches over the vendored tree is >= 5x faster than a cold pass — and a
    *fresh-process* warm start (a brand-new memo instance over the same
    ``--memo-dir``, nothing but the on-disk tier) clears the same bar —
    byte-identical texts both ways.  The memo answers every session from
    content, so both the duplicate-heavy tree (one transform per unique
    text, not per file) and the restarted process (entry files instead of
    re-transforms) collapse to hash-lookup cost."""
    from repro.engine.memo import TransformMemo

    codebase = vendored_workload()
    patches = modernization_patches()
    patchset = PatchSet(patches)
    memo_dir = tmp_path / "memo"

    def compare():
        DEFAULT_TREE_CACHE.clear()
        started = time.perf_counter()
        cold = patchset.apply(codebase, jobs=1, prefilter=True)
        cold_seconds = time.perf_counter() - started

        memo = TransformMemo(path=memo_dir)
        DEFAULT_TREE_CACHE.clear()
        patchset.apply(codebase, jobs=1, prefilter=True, memo=memo)  # fill
        DEFAULT_TREE_CACHE.clear()
        started = time.perf_counter()
        warm = patchset.apply(codebase, jobs=1, prefilter=True, memo=memo)
        warm_seconds = time.perf_counter() - started

        # a brand-new instance over the same directory: what a restarted
        # process (spatch --memo-dir / a rebooted daemon) starts from
        fresh = TransformMemo(path=memo_dir)
        DEFAULT_TREE_CACHE.clear()
        started = time.perf_counter()
        restarted = patchset.apply(codebase, jobs=1, prefilter=True,
                                   memo=fresh)
        fresh_seconds = time.perf_counter() - started
        return (cold, cold_seconds, warm, warm_seconds, restarted,
                fresh_seconds, fresh)

    (cold, cold_seconds, warm, warm_seconds, restarted, fresh_seconds,
     fresh) = benchmark.pedantic(compare, rounds=1, iterations=1)

    # byte-identical both ways, and the warm runs never ran a real session
    assert _texts(warm) == _texts(cold)
    assert _texts(restarted) == _texts(cold)
    assert warm.total_matches == restarted.total_matches \
        == cold.total_matches > 0
    assert warm.stats.memo_misses == 0
    assert restarted.stats.memo_misses == 0
    assert fresh.disk_hits > 0  # the restart really came off the disk tier
    assert warm.stats.sessions_run == cold.stats.sessions_run

    warm_speedup = cold_seconds / warm_seconds
    fresh_speedup = cold_seconds / fresh_seconds
    assert warm_speedup >= speedup_floor(5.0), \
        f"expected >= 5x warm, measured {warm_speedup:.2f}x"
    assert fresh_speedup >= speedup_floor(5.0), \
        f"expected >= 5x from disk, measured {fresh_speedup:.2f}x"

    rows = [
        MemoRow("cold pipeline pass", len(codebase), 0,
                cold.total_matches, cold_seconds, 1.0),
        MemoRow("warm memo (memory tier)", len(codebase),
                warm.stats.memo_hits, warm.total_matches, warm_seconds,
                warm_speedup),
        MemoRow("fresh process (--memo-dir disk tier)", len(codebase),
                restarted.stats.memo_hits, restarted.total_matches,
                fresh_seconds, fresh_speedup),
    ]
    emit("Q3j transform memo (vendored mixed tree, modernization patches)",
         "a warm content-addressed memo answers every session without "
         "parsing >= 5x faster than cold, and a fresh process warm-starts "
         "off the --memo-dir entry files to the same bar, byte-identical "
         "output",
         rows, columns=["path", "files", "memo_hits", "matches", "seconds",
                        "speedup_vs_cold"])


# ---------------------------------------------------------------------------
# Q3k — apply-fleet saturation: 64 clients across sharded workspaces
# ---------------------------------------------------------------------------

@dataclass
class FleetRow:
    config: str
    clients: int
    workspaces: int
    applies: int
    seconds: float
    speedup_vs_one: float


def _q3k_states(n_workspaces: int, files_per_ws: int):
    """Per-workspace A/B file states.  Contents are *unique per workspace*
    (the function names carry the workspace index) so the shared transform
    memo cannot answer one workspace's applies with another's sessions —
    the comparison must measure apply execution, not memo cross-talk."""
    states = {}
    for ws in range(n_workspaces):
        state_a = {
            f"k{index}.c":
                ("void k%d_%d(void) {\n"
                 "  for (int i = 0; i < 64; ++i) { old(); use(i); }\n"
                 "}\n") % (ws, index)
            for index in range(files_per_ws)}
        state_b = {name: text + ("void extra_%d(void) { old(); }\n" % ws)
                   for name, text in state_a.items()}
        states[f"q3k-{ws}"] = (state_a, state_b)
    return states


def test_q3k_fleet_saturation(benchmark, tmp_path):
    """Acceptance: 64 concurrent clients hammering sharded workspaces
    through real sockets — every apply byte-identical to its serial
    reference under both configurations, and (on a >= 8-CPU host, outside
    smoke mode) ``--workers 8`` sustains >= 3x the end-to-end throughput
    of ``--workers 1``: the fleet moves applies onto N CPUs while the
    single-process daemon serializes them behind one GIL."""
    import json as json_mod
    import threading

    from repro.server.client import RemoteClient
    from repro.server.daemon import PatchDaemon
    from repro.server.protocol import result_payload
    from repro.server.service import PatchService

    n_clients = 8 if QUICK else 64
    n_workspaces = 4 if QUICK else 8
    files_per_ws = 2 if QUICK else 4
    rounds = 2
    fleet_workers = 2 if QUICK else 8
    rename = "@r@ @@\n- old();\n+ new_call();\n"
    spec = {"kind": "smpl", "name": "q3k", "text": rename}
    patch = SemanticPatch.from_string(rename, name="q3k")
    states = _q3k_states(n_workspaces, files_per_ws)

    def canonical(payload):
        trimmed = {key: value for key, value in payload.items()
                   if key not in ("profile", "workspace")}
        return json_mod.dumps(trimmed, sort_keys=True)

    # serial references: each workspace state applied locally, once
    references = {
        name: {canonical(result_payload(
            PatchSet([patch]).apply(CodeBase.from_files(state)), [patch]))
            for state in pair}
        for name, pair in states.items()}

    def run_config(workers: int, label: str):
        service = PatchService(workers=workers)
        daemon = PatchDaemon(f"unix:{tmp_path}/{label}.sock", service)
        daemon.serve_in_thread()
        try:
            with RemoteClient(daemon.address) as setup:
                for name, (state_a, _state_b) in states.items():
                    setup.open_workspace(name)
                    setup.sync_files(name, files=state_a)
            payloads, errors = [], []
            barrier = threading.Barrier(n_clients + 1)

            def client_loop(index: int):
                name = f"q3k-{index % n_workspaces}"
                state_a, state_b = states[name]
                try:
                    with RemoteClient(daemon.address) as client:
                        barrier.wait()
                        for round_index in range(rounds):
                            state = (state_a, state_b)[round_index % 2]
                            client.sync_files(name, files=state)
                            payloads.append(
                                (name, client.apply(name, [spec])))
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)
                    try:
                        barrier.abort()
                    except BaseException:
                        pass

            threads = [threading.Thread(target=client_loop, args=(index,))
                       for index in range(n_clients)]
            for thread in threads:
                thread.start()
            barrier.wait()  # all clients connected: timing starts here
            started = time.perf_counter()
            for thread in threads:
                thread.join(timeout=600.0)
            seconds = time.perf_counter() - started
        finally:
            daemon.shutdown()
        assert not errors, errors[:1]
        assert len(payloads) == n_clients * rounds
        # byte-identity: every response equals one of its workspace's
        # serial references (a concurrent sync may interleave, but an
        # apply must never see a torn or wrong-process state)
        for name, payload in payloads:
            assert canonical(payload) in references[name], \
                f"{name}: fleet apply diverged from the serial reference"
        return seconds, len(payloads)

    def compare():
        one_seconds, one_applies = run_config(1, "one")
        fleet_seconds, fleet_applies = run_config(fleet_workers, "fleet")
        return one_seconds, one_applies, fleet_seconds, fleet_applies

    one_seconds, one_applies, fleet_seconds, fleet_applies = \
        benchmark.pedantic(compare, rounds=1, iterations=1)

    speedup = one_seconds / fleet_seconds if fleet_seconds else 0.0
    cpus = os.cpu_count() or 1
    if not QUICK and cpus >= 8:
        assert speedup >= 3.0, \
            f"expected >= 3x with {fleet_workers} workers on {cpus} CPUs, " \
            f"measured {speedup:.2f}x"

    rows = [
        FleetRow("--workers 1 (in-process)", n_clients, n_workspaces,
                 one_applies, one_seconds, 1.0),
        FleetRow(f"--workers {fleet_workers} (apply fleet)", n_clients,
                 n_workspaces, fleet_applies, fleet_seconds, speedup),
    ]
    emit("Q3k fleet saturation (64 clients, sharded workspaces)",
         "concurrent applies across workspaces scale with the worker "
         "fleet (>= 3x at 8 workers on >= 8 CPUs); every response stays "
         "byte-identical to its serial reference",
         rows, columns=["config", "clients", "workspaces", "applies",
                        "seconds", "speedup_vs_one"])
