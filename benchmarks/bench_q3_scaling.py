"""Q3 — engine runtime vs workload size (code-base-wide application)."""

from repro.analysis import scaling_sweep
from repro.cookbook import instrumentation, mdspan
from repro.workloads import gadget, openmp_kernels
from conftest import emit


def test_q3_scaling_instrumentation(benchmark):
    def sweep():
        return scaling_sweep(
            instrumentation.likwid_patch,
            lambda size: openmp_kernels.generate(n_files=size, kernels_per_file=4,
                                                 regions_per_file=3, seed=1),
            sizes=[1, 2, 4, 8])

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # shape: matches grow with the workload and the runtime stays roughly
    # proportional to its size (no super-linear blow-up)
    assert rows[-1].matches > rows[0].matches
    assert rows[-1].workload_loc > 4 * rows[0].workload_loc
    per_loc = [r.seconds / r.workload_loc for r in rows]
    assert per_loc[-1] < per_loc[0] * 8
    emit("Q3a scaling (instrumentation over OpenMP kernels)",
         "runtime grows roughly linearly with the number of files/regions",
         rows, columns=["size_label", "files", "workload_loc", "matches", "seconds",
                        "loc_per_second"])


def test_q3_scaling_mdspan(benchmark):
    def sweep():
        return scaling_sweep(
            lambda: mdspan.multiindex_patch_for_arrays({"rho": 3, "phi": 3}),
            lambda size: gadget.generate(n_files=size, loops_per_file=3,
                                         grid_kernels_per_file=3, seed=1),
            sizes=[1, 2, 4])

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert rows[-1].matches > rows[0].matches
    emit("Q3b scaling (expression rewriting over GADGET-like grids)",
         "expression-level rules also scale with the code base",
         rows, columns=["size_label", "files", "workload_loc", "matches", "seconds",
                        "loc_per_second"])
