"""E4 — bloat and clone removal (paper §3)."""

from repro.cookbook import bloat_removal
from repro.workloads import multiversion_app
from conftest import emit


def test_e04_bloat_removal(benchmark, multiversion_workload):
    patch = bloat_removal.remove_obsolete_clones(("avx512", "avx2"))
    result = benchmark(lambda: patch.apply(multiversion_workload))

    before_clones = multiversion_app.clone_count(multiversion_workload)
    before_defaults = multiversion_app.default_attr_count(multiversion_workload)
    text = "\n".join(f.text for f in result)
    after_clones = text.count('target("avx2")') + text.count('target("avx512")')
    after_defaults = text.count('__attribute__((target("default")))')

    # shape: every obsolete clone removed; the default attribute removed only
    # on functions whose clones were removed (one default-only helper per file
    # keeps its attribute)
    assert before_clones > 0 and after_clones == 0
    assert after_defaults == len(multiversion_workload.files)
    assert result.matches_of("c") == before_clones
    assert result.matches_of("d") == before_defaults - after_defaults

    emit("E4 bloat / clone removal",
         "obsolete ISA clones deleted; base functions keep working, untouched "
         "default-only helpers keep their attribute",
         [{"clones_before": before_clones, "clones_after": after_clones,
           "default_attrs_before": before_defaults, "default_attrs_after": after_defaults,
           "lines_removed": result.lines_removed()}])
