"""E2 — OpenMP ``declare variant`` function cloning (paper §3)."""

from repro.cookbook import declare_variant
from repro.workloads import openmp_kernels
from conftest import emit


def test_e02_declare_variant(benchmark, openmp_workload):
    patch = declare_variant.declare_variant_patch()
    result = benchmark(lambda: patch.apply(openmp_workload))

    kernels = openmp_kernels.kernel_function_count(openmp_workload)
    text = "\n".join(f.text for f in result)
    pragmas = text.count("#pragma omp declare variant")
    avx512_clones = text.count("double avx512_") + text.count("void avx512_")

    # shape: two variants and two pragmas per *kernel* function; helpers and
    # OpenMP regions untouched
    assert pragmas == 2 * kernels > 0
    assert avx512_clones == kernels
    assert "avx512_relax_region" not in text

    emit("E2 declare variant cloning",
         "every function matching the 'kernel' regex gains two ISA variants",
         [{"kernel_functions": kernels, "variant_pragmas": pragmas,
           "clones_per_kernel": 2, "patch_loc": patch.loc()}])
