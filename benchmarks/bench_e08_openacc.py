"""E8 — OpenACC → OpenMP directive translation."""

from repro.cookbook import openacc_openmp
from repro.workloads import openacc_app
from conftest import emit


def test_e08_openacc_to_openmp(benchmark, openacc_workload):
    patch = openacc_openmp.acc_to_omp_patch()
    result = benchmark(lambda: patch.apply(openacc_workload))
    text = "\n".join(f.text for f in result)

    directives = openacc_app.acc_directive_count(openacc_workload)
    continued = openacc_app.continued_directive_count(openacc_workload)

    # shape: every directive (including those split over continuation lines)
    # becomes an OpenMP directive with translated clauses
    assert directives > 0 and continued > 0
    assert "#pragma acc" not in text
    assert text.count("#pragma omp") >= directives
    assert "map(tofrom:" in text and "map(to:" in text
    assert "reduction(+:total)" in text

    emit("E8 OpenACC→OpenMP translation",
         "directive-by-directive translation with a real clause translator in "
         "the python rule; line continuations handled transparently",
         [{"acc_directives": directives, "with_continuations": continued,
           "translated": directives, "sites_matched": result.matches_of("replace")}])
