"""E1 — LIKWID marker-API instrumentation (paper §3, first use case)."""

from repro.analysis import terseness
from repro.cookbook import instrumentation
from repro.workloads import openmp_kernels
from conftest import emit


def test_e01_instrumentation(benchmark, openmp_workload):
    patch = instrumentation.likwid_patch()
    result = benchmark(lambda: patch.apply(openmp_workload))

    intended = openmp_kernels.braced_region_count(openmp_workload)
    started = sum(f.text.count("LIKWID_MARKER_START(__func__);") for f in result)
    stopped = sum(f.text.count("LIKWID_MARKER_STOP(__func__);") for f in result)
    headers = sum(f.text.count("#include <likwid-marker.h>") for f in result)

    # shape: every braced OpenMP region (and only those) is enclosed; one
    # header per file that includes omp.h
    assert started == stopped == intended > 0
    assert headers == len(openmp_workload)

    row = terseness("E1", patch, openmp_workload, result)
    emit("E1 instrumentation (LIKWID markers)",
         "a 10-line semantic patch encloses every OpenMP region in the code base",
         [{"intended_regions": intended, "instrumented": started,
           "patch_loc": row.patch_loc, "workload_loc": row.workload_loc,
           "lines_changed": row.lines_changed}])
