"""E0 — AoS → SoA case study (GADGET, Section 2 / [ML21]), with the
behaviour-preservation check."""

from repro.cookbook import aos_soa
from repro.eval import Interpreter, compare_aos_soa
from repro.workloads import gadget
from conftest import emit


def test_e00_aos_to_soa(benchmark, gadget_workload):
    patch = aos_soa.aos_to_soa_patch_from_codebase(gadget_workload, struct_name="particle")
    result = benchmark(lambda: patch.apply(gadget_workload))
    transformed = patch.transform(gadget_workload)

    before = gadget.aos_access_count(gadget_workload)
    after = gadget.aos_access_count(transformed)

    # shape: every P[...].field access rewritten; SoA arrays declared (extern
    # in the header, defined in globals.c); reductions produce identical
    # results under the interpreter
    assert before > 50 and after == 0
    assert "double P_mass[NPART];" in transformed["globals.c"]
    assert "extern double P_pos[NPART][3];" in transformed["particles.h"]

    totals = [f for f in Interpreter(gadget_workload).function_names()
              if f.startswith("total_")]
    report = compare_aos_soa(gadget_workload, transformed, totals, count=32)
    assert report.all_equivalent, (report.mismatches, report.errors)

    emit("E0 AoS→SoA (GADGET case study)",
         "thousands of member accesses rewritten from a handful of per-field "
         "rules; observable reductions unchanged",
         [{"aos_accesses_before": before, "aos_accesses_after": after,
           "patch_loc": patch.loc(), "sites_matched": result.total_matches,
           "reductions_checked": report.checked,
           "reductions_equivalent": report.equivalent}])
