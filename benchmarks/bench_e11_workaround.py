"""E11 — compiler-bug workaround pragma injection (LIBRSB / GCC vectorizer)."""

from repro.cookbook import compiler_workaround
from repro.workloads import librsb_like
from conftest import emit


def test_e11_workaround(benchmark, librsb_workload):
    patch = compiler_workaround.gcc_workaround_patch()
    result = benchmark(lambda: patch.apply(librsb_workload))
    text = "\n".join(f.text for f in result)

    affected = librsb_like.affected_kernel_count(librsb_workload)
    total = librsb_like.total_kernel_count(librsb_workload)

    # shape: "a dozen functions among a few hundred" get the push/pop pragma
    # pair; everything else is untouched
    assert affected == 12 and total == 288
    assert text.count("#pragma GCC push_options") == affected
    assert text.count("#pragma GCC pop_options") == affected
    assert text.count('#pragma GCC optimize "-O3", "-fno-tree-loop-vectorize"') == affected

    # the workaround is transitory: the removal patch restores the original
    restored = compiler_workaround.removal_patch().apply(
        {name: fr.text for name, fr in result.files.items()})
    assert all("push_options" not in fr.text for fr in restored)

    emit("E11 compiler-bug workaround",
         "regex-selected kernels (12 of 288, the paper's 'dozen among a few "
         "hundred') wrapped in GCC optimisation pragmas, reversibly",
         [{"total_kernels": total, "affected": affected,
           "pragma_pairs_injected": affected,
           "restored_after_removal_patch": all("push_options" not in fr.text
                                               for fr in restored)}])
