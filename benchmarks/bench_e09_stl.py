"""E9 — raw search loops → std::find (modern C++ STL constructs)."""

from repro.cookbook import stl_modernize
from repro.workloads import rawloops
from conftest import emit


def test_e09_raw_loop_to_find(benchmark, rawloops_workload):
    patch = stl_modernize.raw_loop_to_find_patch()
    result = benchmark(lambda: patch.apply(rawloops_workload))
    text = "\n".join(f.text for f in result)

    rewritable = rawloops.raw_search_count(rawloops_workload)
    preserved = rawloops.preserved_loop_count(rawloops_workload)

    # shape: every flag+range-for+break search loop becomes std::find
    # (including the reversed 'k == elem' comparisons, via the disjunction);
    # counting loops without break stay as they are
    assert text.count("find(begin(") == rewritable > 0
    assert text.count("count = count + 1") == preserved > 0
    assert text.count("#include <algorithm>") == len(rawloops_workload)

    emit("E9 raw loop → std::find",
         "recurring raw-loop idioms replaced by an STL call; loops doing more "
         "than searching are preserved",
         [{"search_loops": rewritable, "rewritten": text.count("find(begin("),
           "non_search_loops_preserved": preserved,
           "headers_added": text.count("#include <algorithm>")}])
